"""Property-based tests of the list scheduler on random trees."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ir import (Constant, Opcode, TreeBuilder,
                      build_dependence_graph)
from repro.machine import machine
from repro.sched import list_schedule
from repro.sim import infinite_machine_timing
from repro.sim.timing import issue_constraint

_VALUE_OPCODES = [Opcode.ADD, Opcode.MUL, Opcode.FADD, Opcode.DIV,
                  Opcode.SUB, Opcode.FMUL]


@st.composite
def random_trees(draw):
    """A random DAG-shaped tree: value ops reading earlier results,
    interleaved with stores/loads at small constant addresses."""
    builder = TreeBuilder("t")
    values = [builder.value(Opcode.ADD, [draw(st.integers(0, 5)), 1])]
    for _ in range(draw(st.integers(2, 12))):
        kind = draw(st.integers(0, 4))
        if kind == 0:
            addr = draw(st.integers(0, 7))
            builder.store(draw(st.sampled_from(values)), addr)
        elif kind == 1:
            addr = draw(st.integers(0, 7))
            values.append(builder.load(addr, "int"))
        else:
            opcode = draw(st.sampled_from(_VALUE_OPCODES))
            left = draw(st.sampled_from(values))
            right = draw(st.sampled_from(values + [Constant(2)]))
            values.append(builder.value(opcode, [left, right], type_="int"))
    builder.emit(Opcode.PRINT, [values[-1]])
    builder.halt()
    return builder.tree


_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(tree=random_trees(), width=st.integers(1, 6),
       mem=st.sampled_from([2, 6]))
def test_schedule_respects_capacity_and_constraints(tree, width, mem):
    graph = build_dependence_graph(tree)
    schedule = list_schedule(graph, machine(width, mem))
    for _cycle, nodes in schedule.slots.items():
        assert len(nodes) <= width
    for node in range(graph.num_nodes):
        for arc in graph.preds(node):
            assert schedule.issue[node] >= issue_constraint(
                arc, schedule.issue, schedule.completion), arc


@_SETTINGS
@given(tree=random_trees(), width=st.integers(1, 6),
       mem=st.sampled_from([2, 6]))
def test_schedule_never_beats_dataflow_bound(tree, width, mem):
    graph = build_dependence_graph(tree)
    mach = machine(None, mem)
    ideal = infinite_machine_timing(graph, mach)
    schedule = list_schedule(graph, machine(width, mem))
    for ideal_t, real_t in zip(ideal.path_times, schedule.path_times):
        assert real_t >= ideal_t


@_SETTINGS
@given(tree=random_trees(), mem=st.sampled_from([2, 6]))
def test_wide_machine_matches_dataflow_bound(tree, mem):
    graph = build_dependence_graph(tree)
    ideal = infinite_machine_timing(graph, machine(None, mem))
    schedule = list_schedule(graph, machine(32, mem))
    assert schedule.path_times == ideal.path_times


@_SETTINGS
@given(tree=random_trees(), mem=st.sampled_from([2, 6]))
def test_more_width_never_slower(tree, mem):
    graph = build_dependence_graph(tree)
    previous = None
    for width in (1, 2, 4, 8):
        length = list_schedule(graph, machine(width, mem)).path_times[0]
        if previous is not None:
            assert length <= previous
        previous = length
