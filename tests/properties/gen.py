"""Hypothesis generators: random (but always well-formed and safe)
tinyc programs, and random decision trees.

Safety rules baked into the generator so that any drawn program runs
without runtime errors under the strict interpreter:

* every array subscript is ``((e % N) + N) % N`` for a power-of-two N
  (division by a non-zero constant cannot fault),
* loops have small constant bounds,
* no other division or modulo appears.
"""

from __future__ import annotations

from hypothesis import strategies as st

ARRAY_SIZE = 16

_INT_VARS = ["x0", "x1", "x2", "x3"]
_LOOP_VARS = ["i", "j"]


def _idx(expr: str) -> str:
    return f"((({expr}) % {ARRAY_SIZE}) + {ARRAY_SIZE}) % {ARRAY_SIZE}"


@st.composite
def int_exprs(draw, depth: int = 0, vars_=None):
    vars_ = vars_ or _INT_VARS
    if depth >= 2:
        choice = draw(st.integers(0, 1))
    else:
        choice = draw(st.integers(0, 4))
    if choice == 0:
        return str(draw(st.integers(-9, 9)))
    if choice == 1:
        return draw(st.sampled_from(vars_))
    left = draw(int_exprs(depth + 1, vars_))
    right = draw(int_exprs(depth + 1, vars_))
    if choice == 2:
        return f"({left} + {right})"
    if choice == 3:
        return f"({left} - {right})"
    scale = draw(st.integers(2, 3))
    return f"({left} * {scale})"


@st.composite
def conditions(draw, vars_):
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    left = draw(int_exprs(1, vars_))
    right = draw(int_exprs(1, vars_))
    return f"({left}) {op} ({right})"


@st.composite
def statements(draw, depth: int, vars_, with_calls: bool):
    kind = draw(st.integers(0, 7 if depth < 2 else 4))
    if kind == 0:
        # never assign loop variables: that could make a loop diverge
        var = draw(st.sampled_from(_INT_VARS))
        expr = draw(int_exprs(0, vars_))
        return f"{var} = {expr};"
    if kind == 1:
        idx = _idx(draw(int_exprs(1, vars_)))
        expr = draw(int_exprs(0, vars_))
        return f"ga[{idx}] = {expr};"
    if kind == 2:
        var = draw(st.sampled_from(_INT_VARS))
        idx = _idx(draw(int_exprs(1, vars_)))
        return f"{var} = ga[{idx}];"
    if kind == 3:
        expr = draw(int_exprs(0, vars_))
        return f"print({expr});"
    if kind == 4:
        if with_calls:
            a = _idx(draw(int_exprs(1, vars_)))
            b = _idx(draw(int_exprs(1, vars_)))
            return f"touch(ga, {a}, {b});"
        idx = _idx(draw(int_exprs(1, vars_)))
        return f"print(ga[{idx}]);"
    if kind == 5:
        cond = draw(conditions(vars_))
        then_body = draw(blocks(depth + 1, vars_, with_calls, 1, 3))
        if draw(st.booleans()):
            else_body = draw(blocks(depth + 1, vars_, with_calls, 1, 2))
            return (f"if ({cond}) {{ {then_body} }} "
                    f"else {{ {else_body} }}")
        return f"if ({cond}) {{ {then_body} }}"
    if kind == 6:
        loop_var = draw(st.sampled_from(_LOOP_VARS))
        limit = draw(st.integers(1, 6))
        body = draw(blocks(depth + 1, vars_ + [loop_var], with_calls, 1, 3))
        return (f"for (int {loop_var} = 0; {loop_var} < {limit}; "
                f"{loop_var} = {loop_var} + 1) {{ {body} }}")
    # kind == 7: two adjacent memory statements (the SpD-relevant shape)
    idx_a = _idx(draw(int_exprs(1, vars_)))
    idx_b = _idx(draw(int_exprs(1, vars_)))
    var = draw(st.sampled_from(_INT_VARS))
    return (f"ga[{idx_a}] = {var} + 1; "
            f"{var} = ga[{idx_b}] * 2;")


@st.composite
def blocks(draw, depth: int, vars_, with_calls: bool,
           min_stmts: int, max_stmts: int):
    count = draw(st.integers(min_stmts, max_stmts))
    return " ".join(draw(statements(depth, vars_, with_calls))
                    for _ in range(count))


@st.composite
def tinyc_programs(draw):
    """A random, safe tinyc program exercising stores, loads, branches,
    loops and (usually) an array-parameter helper function."""
    with_calls = draw(st.booleans())
    decls = "\n".join(f"int {v} = {draw(st.integers(-4, 4))};"
                      for v in _INT_VARS)
    body = draw(blocks(0, list(_INT_VARS), with_calls, 3, 7))
    helper = """
void touch(int arr[], int a, int b) {
    arr[a] = arr[b] + 3;
}
""" if with_calls else ""
    return f"""
int ga[{ARRAY_SIZE}];
{helper}
int main() {{
    {decls}
    {body}
    int k;
    for (k = 0; k < {ARRAY_SIZE}; k = k + 1) {{
        print(ga[k]);
    }}
    print(x0); print(x1); print(x2); print(x3);
    return 0;
}}
"""
