"""Property tests for the cleanup passes: semantics and idempotence.

Two invariants, checked on random tinyc programs and on every built-in
benchmark's SPEC view:

* every cleanup pass (alone and as the default pipeline) preserves
  interpreter output — ``run_program`` equivalence;
* every cleanup pass is idempotent: a second run over its own output
  changes nothing.
"""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.bench.suite import SUITE
from repro.disambig import Disambiguator, disambiguate
from repro.frontend import compile_source
from repro.ir import validate_program
from repro.machine import machine
from repro.passes import (DEFAULT_CLEANUP, PassManager, PassPipelineConfig,
                          build_cleanup_passes)
from repro.sim import run_program

from .gen import tinyc_programs

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_MAX_STEPS = 2_000_000


def run_cleanup(program, names):
    """Run the named cleanup passes on a copy; return (program, reports)."""
    manager = PassManager(build_cleanup_passes(names))
    cleaned = manager.run(program.copy())
    return cleaned, manager.reports


def assert_idempotent(cleaned, names):
    again, reports = run_cleanup(cleaned, names)
    assert all(not r["changed"] for r in reports), reports
    assert again.size() == cleaned.size()


def assert_converges(cleaned, names, rounds=5):
    """The pass *sequence* must reach a fixpoint within a few rounds.

    A single round of (constfold, copyprop, dce) is not guaranteed to be
    a sequence-level fixpoint: dce may strip a statically-true guard and
    thereby expose a new constant-propagation source for constfold.  Each
    pass is individually idempotent (covered elsewhere); here we check
    the sequence settles instead of oscillating.
    """
    program = cleaned
    for _ in range(rounds):
        program, reports = run_cleanup(program, names)
        if all(not r["changed"] for r in reports):
            return program
    raise AssertionError(
        f"cleanup sequence {names} did not converge in {rounds} rounds")


@_SETTINGS
@given(source=tinyc_programs())
@pytest.mark.parametrize("pass_name", DEFAULT_CLEANUP)
def test_each_pass_preserves_output_and_is_idempotent(pass_name, source):
    program = compile_source(source)
    reference = run_program(program, max_steps=_MAX_STEPS)
    cleaned, _reports = run_cleanup(program, (pass_name,))
    validate_program(cleaned)
    result = run_program(cleaned.copy(), collect_profile=False,
                         max_steps=_MAX_STEPS)
    assert reference.output_equal(result), source
    assert_idempotent(cleaned, (pass_name,))


@_SETTINGS
@given(source=tinyc_programs())
def test_default_pipeline_on_spec_view(source):
    """The full cleanup pipeline after SpD: output-equal, never growing."""
    program = compile_source(source)
    reference = run_program(program, max_steps=_MAX_STEPS)
    plain = disambiguate(program, Disambiguator.SPEC,
                         profile=reference.profile,
                         machine=machine(None, 6))
    cleaned = disambiguate(program, Disambiguator.SPEC,
                           profile=reference.profile,
                           machine=machine(None, 6),
                           passes=PassPipelineConfig(cleanup=DEFAULT_CLEANUP))
    validate_program(cleaned.program)
    assert cleaned.code_size() <= plain.code_size()
    result = run_program(cleaned.program.copy(), collect_profile=False,
                         max_steps=_MAX_STEPS)
    assert reference.output_equal(result), source
    settled = assert_converges(cleaned.program, DEFAULT_CLEANUP)
    final = run_program(settled.copy(), collect_profile=False,
                        max_steps=_MAX_STEPS)
    assert reference.output_equal(final), source


@pytest.mark.parametrize("name", sorted(SUITE))
def test_benchmark_spec_views_survive_cleanup(name, runner):
    """On every benchmark: cleanup of the SPEC view keeps the output
    byte-identical and the sequence settles to a fixpoint."""
    compiled = runner.compiled(name)
    view = runner.view(name, Disambiguator.SPEC)
    cleaned, _reports = run_cleanup(view.program, DEFAULT_CLEANUP)
    validate_program(cleaned)
    assert cleaned.size() <= view.program.size()
    result = run_program(cleaned.copy(), collect_profile=False)
    assert compiled.reference.output_equal(result)
    assert_converges(cleaned, DEFAULT_CLEANUP)
