"""Property-based soundness of GuardAnalysis.

If the analysis claims two guards are disjoint, then no assignment of
truth values to the atomic registers may satisfy both — otherwise the
dependence builder drops real dependences between the SpD versions.
"""

import itertools

from hypothesis import given, strategies as st

from repro.ir import BOOL, Constant, Guard, Opcode, Operation, Register
from repro.ir.guard_analysis import GuardAnalysis
from repro.ir.tree import DecisionTree

_ATOMS = ["a0", "a1", "a2"]


@st.composite
def guard_trees(draw):
    """A tree of boolean definitions over three atoms, plus the list of
    defined registers to pick guards from."""
    tree = DecisionTree("t")
    regs = []
    for name in _ATOMS:
        reg = Register(name, BOOL)
        tree.append(Operation(tree.fresh_op_id(), Opcode.CMP_LT, dest=reg,
                              srcs=(Constant(1), Constant(2))))
        regs.append(reg)
    for index in range(draw(st.integers(1, 4))):
        opcode = draw(st.sampled_from(
            [Opcode.AND, Opcode.ANDN, Opcode.OR, Opcode.NOT]))
        dest = Register(f"d{index}", BOOL)
        if opcode is Opcode.NOT:
            srcs = (draw(st.sampled_from(regs)),)
        else:
            srcs = (draw(st.sampled_from(regs)),
                    draw(st.sampled_from(regs)))
        tree.append(Operation(tree.fresh_op_id(), opcode, dest=dest,
                              srcs=srcs))
        regs.append(dest)
    return tree, regs


def evaluate_reg(tree, reg, env):
    """Evaluate a boolean register under an atom assignment."""
    values = dict(env)
    for op in tree.ops:
        name = op.dest.name
        if name in _ATOMS:
            continue  # atom values come from env
        srcs = [values[s.name] for s in op.srcs]
        if op.opcode is Opcode.AND:
            values[name] = srcs[0] and srcs[1]
        elif op.opcode is Opcode.ANDN:
            values[name] = srcs[0] and not srcs[1]
        elif op.opcode is Opcode.OR:
            values[name] = srcs[0] or srcs[1]
        elif op.opcode is Opcode.NOT:
            values[name] = not srcs[0]
    return values[reg.name]


def guard_value(tree, guard, env):
    value = evaluate_reg(tree, guard.reg, env)
    return (not value) if guard.negate else value


@given(data=guard_trees(),
       neg_a=st.booleans(), neg_b=st.booleans(),
       pick=st.tuples(st.integers(0, 100), st.integers(0, 100)))
def test_disjointness_is_sound(data, neg_a, neg_b, pick):
    tree, regs = data
    guard_a = Guard(regs[pick[0] % len(regs)], neg_a)
    guard_b = Guard(regs[pick[1] % len(regs)], neg_b)
    analysis = GuardAnalysis(tree)
    if not analysis.disjoint(guard_a, guard_b):
        return
    for assignment in itertools.product([False, True], repeat=len(_ATOMS)):
        env = dict(zip(_ATOMS, assignment))
        both = (guard_value(tree, guard_a, env)
                and guard_value(tree, guard_b, env))
        assert not both, (guard_a, guard_b, env)


@given(data=guard_trees(), pick=st.integers(0, 100), neg=st.booleans())
def test_guard_never_disjoint_with_itself_unless_unsatisfiable(data, pick, neg):
    tree, regs = data
    guard = Guard(regs[pick % len(regs)], neg)
    analysis = GuardAnalysis(tree)
    if analysis.disjoint(guard, guard):
        # only possible if the guard is never true at all
        for assignment in itertools.product([False, True],
                                            repeat=len(_ATOMS)):
            env = dict(zip(_ATOMS, assignment))
            assert not guard_value(tree, guard, env)
