"""Property-based tests of affine-expression algebra."""

from hypothesis import given, strategies as st

from repro.ir import AffineExpr

symbols = st.sampled_from(["i", "j", "k", "n"])
coeff_maps = st.dictionaries(symbols, st.integers(-20, 20), max_size=4)
affines = st.builds(AffineExpr, st.integers(-100, 100), coeff_maps)
envs = st.fixed_dictionaries({s: st.integers(-50, 50)
                              for s in ["i", "j", "k", "n"]})


@given(a=affines, b=affines, env=envs)
def test_add_homomorphism(a, b, env):
    assert a.add(b).evaluate(env) == a.evaluate(env) + b.evaluate(env)


@given(a=affines, b=affines, env=envs)
def test_sub_homomorphism(a, b, env):
    assert a.sub(b).evaluate(env) == a.evaluate(env) - b.evaluate(env)


@given(a=affines, factor=st.integers(-10, 10), env=envs)
def test_scale_homomorphism(a, factor, env):
    assert a.scale(factor).evaluate(env) == factor * a.evaluate(env)


@given(a=affines, b=affines)
def test_add_commutative(a, b):
    assert a.add(b) == b.add(a)


@given(a=affines, b=affines, c=affines)
def test_add_associative(a, b, c):
    assert a.add(b).add(c) == a.add(b.add(c))


@given(a=affines)
def test_sub_self_is_zero(a):
    diff = a.sub(a)
    assert diff.is_constant and diff.const == 0


@given(a=affines, b=affines, env=envs)
def test_mul_homomorphism_when_affine(a, b, env):
    product = a.mul(b)
    if product is not None:
        assert product.evaluate(env) == a.evaluate(env) * b.evaluate(env)
    else:
        # mul only fails when both sides have symbols
        assert a.coeffs and b.coeffs


@given(a=affines)
def test_no_zero_coefficients_stored(a):
    assert all(c != 0 for c in a.coeffs.values())
