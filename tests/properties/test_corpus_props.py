"""Property tests for corpus shape features and stratified selection.

The manifest's meaning rests on two functions being truly deterministic
and structural: :func:`extract_features` (stable under re-parse,
monotone in program size) and :func:`select_entries` (independent of
candidate ordering, covering every stratum).  Hypothesis drives both
over the same seeded generator the curator uses.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.features import (extract_features, features_of_unit,
                                   stratum_of)
from repro.corpus.manifest import CONFIG_TIERS, Candidate, select_entries
from repro.frontend.parser import parse
from repro.fuzz.generator import generate_program

_SETTINGS = settings(max_examples=30, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_CONFIG_NAMES = sorted(CONFIG_TIERS)


@st.composite
def generated_sources(draw):
    name = draw(st.sampled_from(_CONFIG_NAMES))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    return generate_program(seed, CONFIG_TIERS[name])


@_SETTINGS
@given(source=generated_sources())
def test_features_stable_under_reparse(source):
    """Same source, any number of parses: identical features."""
    first = extract_features(source)
    assert first == extract_features(source)
    assert first == features_of_unit(parse(source))


@_SETTINGS
@given(source=generated_sources())
def test_features_are_internally_consistent(source):
    features = extract_features(source)
    assert features.nodes > 0
    assert features.mem_refs == features.loads + features.stores
    assert 0.0 <= features.alias_density <= 1.0
    assert features.loop_nesting >= 1  # the observability dump tail
    # the stratum is well-formed whatever the program looks like
    assert len(stratum_of(features, ops=200).split("-")) == 4


@_SETTINGS
@given(source=generated_sources(),
       extra=st.integers(min_value=1, max_value=5))
def test_features_monotone_in_program_size(source, extra):
    """Inserting statements never shrinks any counter (monotonicity:
    bigger program => feature counters >=)."""
    grown = source.replace("int main() {",
                           "int main() {\n" + "ga[0] = ga[1] + 1;\n" * extra,
                           1)
    small = extract_features(source)
    big = extract_features(grown)
    assert big.nodes > small.nodes
    assert big.loads >= small.loads + extra
    assert big.stores >= small.stores + extra
    assert big.calls >= small.calls
    assert big.diamond_depth >= small.diamond_depth
    assert big.loop_nesting >= small.loop_nesting


@st.composite
def candidate_pools(draw):
    strata = draw(st.lists(
        st.sampled_from(["xs-lo-loop-d1", "sm-hi-nest-d1", "md-hi-nest-d2",
                         "lg-lo-deep-d2", "sm-lo-loop-d1"]),
        min_size=1, max_size=60))
    return [Candidate(id=f"c:{index:03d}", config="s-lo", seed=index,
                      fingerprint=f"{index:064x}",
                      ops=draw(st.integers(min_value=40, max_value=1500)),
                      features={}, stratum=stratum)
            for index, stratum in enumerate(strata)]


@_SETTINGS
@given(candidates=candidate_pools(),
       target=st.integers(min_value=1, max_value=80),
       shuffle_seed=st.integers(min_value=0, max_value=1000))
def test_selection_order_independent_and_covering(candidates, target,
                                                  shuffle_seed):
    baseline = select_entries(candidates, target)
    shuffled = list(candidates)
    random.Random(shuffle_seed).shuffle(shuffled)
    assert select_entries(shuffled, target) == baseline
    # every stratum present in the pool is always represented —
    # coverage beats the head count
    pool_strata = {c.stratum for c in candidates}
    assert {c.stratum for c in baseline} == pool_strata
    assert len(baseline) == min(len(candidates),
                                max(target, len(pool_strata)))
    # no duplicates ever
    assert len({c.id for c in baseline}) == len(baseline)
