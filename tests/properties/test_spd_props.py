"""Property-based tests of the SpD transform on random trees.

For every random tree and every ambiguous arc in it: applying SpD must
preserve sequential semantics (checked by direct execution with random
initial memory) and must actually resolve the arc.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.disambig import SpDNotApplicable, apply_spd
from repro.ir import (ArrayDecl, Constant, Function, Opcode, Program,
                      TreeBuilder, build_dependence_graph,
                      validate_program)
from repro.sim import run_program

MEM_WORDS = 8


@st.composite
def mem_trees(draw):
    """A random single tree mixing stores, loads and arithmetic over a
    small memory; addresses are either constants or computed."""
    program = Program()
    program.globals_.append(ArrayDecl("a", "float", (MEM_WORDS,)))
    function = Function("main")
    builder = TreeBuilder("t0")
    values = [builder.value(Opcode.FADD,
                            [float(draw(st.integers(1, 5))), 0.5])]
    for _ in range(draw(st.integers(3, 10))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            addr = builder.value(Opcode.ADD,
                                 [draw(st.integers(0, MEM_WORDS - 1)), 0])
            builder.store(draw(st.sampled_from(values)), addr)
        elif kind == 1:
            addr = builder.value(Opcode.ADD,
                                 [draw(st.integers(0, MEM_WORDS - 1)), 0])
            values.append(builder.load(addr, "float"))
        else:
            opcode = draw(st.sampled_from([Opcode.FADD, Opcode.FMUL]))
            left = draw(st.sampled_from(values))
            right = draw(st.sampled_from(values + [Constant(2.0)]))
            values.append(builder.value(opcode, [left, right]))
    for value in values[-2:]:
        builder.emit(Opcode.PRINT, [value])
    builder.halt()
    function.add_tree(builder.tree)
    program.add_function(function)
    program.layout_memory()
    return program


_SETTINGS = settings(max_examples=60, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(program=mem_trees(), arc_pick=st.integers(0, 100))
def test_apply_spd_preserves_semantics(program, arc_pick):
    tree = program.functions["main"].trees["t0"]
    graph = build_dependence_graph(tree)
    arcs = graph.ambiguous_arcs()
    if not arcs:
        return
    arc = arcs[arc_pick % len(arcs)]
    reference = run_program(program.copy(), strict_memory=True)
    transformed = program.copy()
    tree2 = transformed.functions["main"].trees["t0"]
    graph2 = build_dependence_graph(tree2)
    arc2 = next(a for a in graph2.ambiguous_arcs() if a.key == arc.key)
    try:
        apply_spd(tree2, arc2)
    except SpDNotApplicable:
        return
    validate_program(transformed)
    result = run_program(transformed, strict_memory=True)
    assert reference.output_equal(result)


@_SETTINGS
@given(program=mem_trees(), arc_pick=st.integers(0, 100))
def test_apply_spd_resolves_the_arc(program, arc_pick):
    tree = program.functions["main"].trees["t0"]
    graph = build_dependence_graph(tree)
    arcs = graph.ambiguous_arcs()
    if not arcs:
        return
    arc = arcs[arc_pick % len(arcs)]
    try:
        apply_spd(tree, arc)
    except SpDNotApplicable:
        return
    rebuilt = build_dependence_graph(tree)
    assert arc.key not in {a.key for a in rebuilt.ambiguous_arcs()}


@_SETTINGS
@given(program=mem_trees(), picks=st.lists(st.integers(0, 100),
                                           min_size=1, max_size=3))
def test_repeated_applications_stay_correct(program, picks):
    """Iterated SpD (the heuristic's loop) must compose safely."""
    reference = run_program(program.copy(), strict_memory=True)
    tree = program.functions["main"].trees["t0"]
    for pick in picks:
        graph = build_dependence_graph(tree)
        arcs = graph.ambiguous_arcs()
        if not arcs:
            break
        try:
            apply_spd(tree, arcs[pick % len(arcs)])
        except SpDNotApplicable:
            continue
    validate_program(program)
    result = run_program(program, strict_memory=True)
    assert reference.output_equal(result)
