"""Property-based tests of the whole pipeline on random tinyc programs.

The central invariant of the entire system: *no disambiguator changes
program semantics*.  SPEC rewrites code, so it carries the burden of
proof; the others must at least produce valid dependence views and
consistent timing orderings.
"""

from hypothesis import HealthCheck, given, settings

from repro.disambig import Disambiguator, disambiguate
from repro.frontend import compile_source
from repro.ir import validate_program
from repro.machine import machine
from repro.sim import evaluate_program, run_program

from .gen import tinyc_programs

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


@_SETTINGS
@given(source=tinyc_programs())
def test_spec_preserves_semantics(source):
    """SPEC's code transformation never changes observable output.

    Note: lenient loads are required — if-converted loop bodies execute
    their loads speculatively on the exit iteration (out of bounds by
    one), the very situation the paper's Section 4.6 discusses.
    """
    program = compile_source(source)
    reference = run_program(program, max_steps=2_000_000)
    for memory_latency in (2, 6):
        view = disambiguate(program, Disambiguator.SPEC,
                            profile=reference.profile,
                            machine=machine(None, memory_latency))
        validate_program(view.program)
        transformed = run_program(view.program.copy(), collect_profile=False,
                                  max_steps=2_000_000)
        assert reference.output_equal(transformed), source


@_SETTINGS
@given(source=tinyc_programs())
def test_disambiguator_timing_orderings(source):
    """NAIVE >= STATIC >= PERFECT cycles, and SPEC never loses to
    STATIC — on the infinite machine, where arc-removal monotonicity is
    exact.  (On finite machines a greedy list scheduler can exhibit
    1-cycle Graham anomalies when constraints are *removed*, so the
    ordering there is only approximate.)"""
    program = compile_source(source)
    reference = run_program(program)
    mach = machine(None, 6)
    cycles = {}
    for kind in Disambiguator:
        view = disambiguate(program, kind, profile=reference.profile,
                            machine=mach)
        cycles[kind] = evaluate_program(view.program, view.graphs, mach,
                                        reference.profile).cycles
    assert cycles[Disambiguator.NAIVE] >= cycles[Disambiguator.STATIC]
    assert cycles[Disambiguator.STATIC] >= cycles[Disambiguator.PERFECT]
    assert cycles[Disambiguator.SPEC] <= cycles[Disambiguator.STATIC]

    # finite machine: the ordering holds within a small anomaly margin
    finite = machine(5, 6)
    for better, worse in ((Disambiguator.PERFECT, Disambiguator.NAIVE),
                          (Disambiguator.SPEC, Disambiguator.NAIVE)):
        better_view = disambiguate(program, better,
                                   profile=reference.profile, machine=finite)
        worse_view = disambiguate(program, worse,
                                  profile=reference.profile, machine=finite)
        better_cycles = evaluate_program(
            better_view.program, better_view.graphs, finite,
            reference.profile).cycles
        worse_cycles = evaluate_program(
            worse_view.program, worse_view.graphs, finite,
            reference.profile).cycles
        assert better_cycles <= worse_cycles * 1.02 + 8


@_SETTINGS
@given(source=tinyc_programs())
def test_compilation_is_deterministic(source):
    """Compiling twice yields structurally identical programs."""
    from repro.ir import format_program
    first = compile_source(source)
    second = compile_source(source)
    assert format_program(first) == format_program(second)


@_SETTINGS
@given(source=tinyc_programs())
def test_interpreter_deterministic(source):
    program = compile_source(source)
    a = run_program(program.copy())
    b = run_program(program.copy())
    assert a.output == b.output
    assert a.steps == b.steps


@_SETTINGS
@given(source=tinyc_programs())
def test_grafting_preserves_semantics(source):
    """Tail duplication (Section 7 grafting) never changes output, and
    composes safely with the SPEC pipeline."""
    from repro.frontend import graft_program
    program = compile_source(source)
    reference = run_program(program, max_steps=2_000_000)
    grafted, _stats = graft_program(program)
    validate_program(grafted)
    result = run_program(grafted.copy(), max_steps=4_000_000)
    assert reference.output_equal(result), source
    # and SPEC on top of grafted trees stays sound
    profile = result.profile
    view = disambiguate(grafted, Disambiguator.SPEC, profile=profile,
                        machine=machine(None, 6))
    transformed = run_program(view.program.copy(), collect_profile=False,
                              max_steps=4_000_000)
    assert reference.output_equal(transformed), source
