"""Property-based tests of the hardware simulator on random programs.

Three structural guarantees of :mod:`repro.hwsim`, checked against
arbitrary well-formed tinyc programs:

* **functional equivalence** — every predictor configuration reproduces
  the reference interpreter's output, return value and final memory
  (the commit pass derives load values from the load/store queue's
  timing, so this genuinely tests the engine's memory ordering);
* **dataflow lower bound** — no finite configuration ever finishes in
  fewer cycles than the unbounded oracle machine;
* **no speculation, no squashes** — the ``never`` predictor's runs
  squash zero loads, by construction;
* **determinism** — two independent simulations of the same program on
  the same machine agree bit for bit (cycles, counters, output).
"""

from hypothesis import HealthCheck, given, settings

from repro.frontend import compile_source
from repro.hwsim import simulate_program
from repro.machine import HW_ORACLE_INFINITE, hw_machine
from repro.sim import run_program

from .gen import tinyc_programs

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

#: A deliberately tight machine: 2 units, 8-entry window, so the
#: retirement/window logic is load-bearing, not just the bypass logic.
_TIGHT = dict(memory_latency=2, window=8)


@_SETTINGS
@given(source=tinyc_programs())
def test_hw_matches_interpreter_all_predictors(source):
    program = compile_source(source)
    reference = run_program(program, max_steps=2_000_000)
    for predictor in ("always", "never", "store-set", "oracle"):
        mach = hw_machine(2, predictor=predictor, **_TIGHT)
        result = simulate_program(program.copy(), mach,
                                  max_steps=2_000_000)
        assert reference.output_equal(result), (source, predictor)
        assert reference.return_value == result.return_value, (
            source, predictor)


@_SETTINGS
@given(source=tinyc_programs())
def test_hw_finite_never_beats_oracle_infinite(source):
    program = compile_source(source)
    bound = simulate_program(program.copy(), HW_ORACLE_INFINITE,
                             max_steps=2_000_000).cycles
    for predictor in ("always", "never", "store-set"):
        for fus in (1, 2):
            mach = hw_machine(fus, predictor=predictor, **_TIGHT)
            cycles = simulate_program(program.copy(), mach,
                                      max_steps=2_000_000).cycles
            assert cycles >= bound, (source, predictor, fus, cycles, bound)


@_SETTINGS
@given(source=tinyc_programs())
def test_never_speculate_never_squashes(source):
    program = compile_source(source)
    result = simulate_program(
        program.copy(), hw_machine(2, predictor="never", **_TIGHT),
        max_steps=2_000_000)
    assert result.timing.stats["squashes"] == 0
    assert result.timing.stats["violations"] == 0
    assert result.timing.stats["spec_issues"] == 0


@_SETTINGS
@given(source=tinyc_programs())
def test_hw_simulation_is_deterministic(source):
    program = compile_source(source)
    mach = hw_machine(2, predictor="store-set", **_TIGHT)
    first = simulate_program(program.copy(), mach, max_steps=2_000_000)
    second = simulate_program(program.copy(), mach, max_steps=2_000_000)
    assert first.cycles == second.cycles
    assert first.output == second.output
    assert first.timing == second.timing
