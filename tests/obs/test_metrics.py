"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import HistogramSummary, MetricsRegistry


class TestCounters:
    def test_incr_accumulates(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.incr("a", 4)
        assert registry.counters["a"] == 5

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1)
        registry.set_gauge("g", 9)
        assert registry.gauges["g"] == 9


class TestHistograms:
    def test_observe_summarises(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("h", value)
        summary = registry.histograms["h"]
        assert summary.count == 3
        assert summary.total == pytest.approx(6.0)
        assert summary.min == 1.0
        assert summary.max == 3.0
        assert summary.mean == pytest.approx(2.0)

    def test_empty_summary_mean(self):
        assert HistogramSummary().mean == 0.0


class TestSnapshotAndMerge:
    def test_snapshot_is_json_serialisable_and_sorted(self):
        registry = MetricsRegistry()
        registry.incr("z", 1)
        registry.incr("a", 2)
        registry.set_gauge("g", 7)
        registry.observe("h", 1.5)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_combines_families(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.incr("n", 1)
        right.incr("n", 2)
        right.set_gauge("g", 3)
        left.observe("h", 1.0)
        right.observe("h", 5.0)
        left.merge(right)
        assert left.counters["n"] == 3
        assert left.gauges["g"] == 3
        assert left.histograms["h"].count == 2
        assert left.histograms["h"].min == 1.0
        assert left.histograms["h"].max == 5.0
