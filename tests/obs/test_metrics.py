"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs.metrics import RESERVOIR_CAP, HistogramSummary, MetricsRegistry


class TestCounters:
    def test_incr_accumulates(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.incr("a", 4)
        assert registry.counters["a"] == 5

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1)
        registry.set_gauge("g", 9)
        assert registry.gauges["g"] == 9


class TestHistograms:
    def test_observe_summarises(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 2.0):
            registry.observe("h", value)
        summary = registry.histograms["h"]
        assert summary.count == 3
        assert summary.total == pytest.approx(6.0)
        assert summary.min == 1.0
        assert summary.max == 3.0
        assert summary.mean == pytest.approx(2.0)

    def test_empty_summary_mean(self):
        assert HistogramSummary().mean == 0.0


class TestPercentiles:
    def test_exact_on_small_series(self):
        summary = HistogramSummary()
        for value in range(1, 101):  # 1..100
            summary.add(float(value))
        assert summary.percentile(50) == pytest.approx(50.0, abs=1.0)
        assert summary.percentile(95) == pytest.approx(95.0, abs=1.0)
        assert summary.percentile(99) == pytest.approx(99.0, abs=1.0)
        assert summary.percentile(0) == 1.0
        assert summary.percentile(100) == 100.0

    def test_empty_series_has_no_percentiles(self):
        summary = HistogramSummary()
        assert summary.percentile(50) is None
        assert "p50" not in summary.to_dict()

    def test_to_dict_reports_percentiles(self):
        summary = HistogramSummary()
        for value in (1.0, 2.0, 3.0):
            summary.add(value)
        out = summary.to_dict()
        assert out["p50"] == pytest.approx(2.0)
        assert out["p95"] == pytest.approx(3.0)
        assert out["p99"] == pytest.approx(3.0)

    def test_reservoir_stays_bounded(self):
        summary = HistogramSummary()
        for value in range(10 * RESERVOIR_CAP):
            summary.add(float(value))
        assert len(summary.samples) < RESERVOIR_CAP
        assert summary.count == 10 * RESERVOIR_CAP
        assert summary.stride > 1

    def test_decimated_percentiles_stay_representative(self):
        summary = HistogramSummary()
        n = 20 * RESERVOIR_CAP
        for value in range(n):
            summary.add(float(value))
        # an evenly spaced subsample of 0..n-1 keeps the quantiles
        assert summary.percentile(50) == pytest.approx(n / 2, rel=0.05)
        assert summary.percentile(95) == pytest.approx(0.95 * n, rel=0.05)

    def test_deterministic_across_runs(self):
        def build():
            summary = HistogramSummary()
            for value in range(3000):
                summary.add(float(value * 7 % 1000))
            return summary
        assert build().to_dict() == build().to_dict()

    def test_combine_merges_reservoirs(self):
        left, right = HistogramSummary(), HistogramSummary()
        for value in range(100):
            left.add(float(value))          # 0..99
            right.add(float(value + 100))   # 100..199
        left.combine(right)
        assert left.count == 200
        assert left.percentile(50) == pytest.approx(100.0, rel=0.1)
        assert len(left.samples) < RESERVOIR_CAP

    def test_combine_rethins_under_cap(self):
        left, right = HistogramSummary(), HistogramSummary()
        for value in range(RESERVOIR_CAP - 1):
            left.add(float(value))
            right.add(float(value))
        left.combine(right)
        assert len(left.samples) < RESERVOIR_CAP
        assert left.stride > 1


class TestSnapshotAndMerge:
    def test_snapshot_is_json_serialisable_and_sorted(self):
        registry = MetricsRegistry()
        registry.incr("z", 1)
        registry.incr("a", 2)
        registry.set_gauge("g", 7)
        registry.observe("h", 1.5)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["gauges"] == {"g": 7}
        assert snap["histograms"]["h"]["count"] == 1

    def test_merge_combines_families(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.incr("n", 1)
        right.incr("n", 2)
        right.set_gauge("g", 3)
        left.observe("h", 1.0)
        right.observe("h", 5.0)
        left.merge(right)
        assert left.counters["n"] == 3
        assert left.gauges["g"] == 3
        assert left.histograms["h"].count == 2
        assert left.histograms["h"].min == 1.0
        assert left.histograms["h"].max == 5.0

    @staticmethod
    def _worker(seed):
        registry = MetricsRegistry()
        for i in range(seed * 10):
            registry.incr("work", 2)
            registry.observe("h", float(i))
        return registry

    def test_merge_is_associative_on_counters(self):
        """Counters after any merge grouping equal the serial totals —
        the property the jobs=N executor relies on."""
        a, b, c = (self._worker(s) for s in (1, 2, 3))
        left = MetricsRegistry()
        left.merge(a)
        left.merge(b)
        left.merge(c)

        bc = MetricsRegistry()
        bc.merge(self._worker(2))
        bc.merge(self._worker(3))
        right = MetricsRegistry()
        right.merge(self._worker(1))
        right.merge(bc)

        serial = self._worker(1)
        for s in (2, 3):
            serial.merge(self._worker(s))

        assert (left.counters == right.counters == serial.counters
                == {"work": 120})
        assert (left.histograms["h"].count == right.histograms["h"].count
                == serial.histograms["h"].count == 60)

    def test_snapshot_bytes_independent_of_merge_order(self):
        """jobs=4 workers fold in scheduling order; exported JSON must
        not depend on that order."""
        def snap(order):
            root = MetricsRegistry()
            for seed in order:
                root.merge(self._worker(seed))
            return json.dumps(root.snapshot(), sort_keys=True)
        assert snap((1, 2, 3)) == snap((3, 1, 2))
