"""Tests for the hierarchical span tracer (repro.obs.trace)."""

import pytest

from repro import obs
from repro.obs.trace import NULL_SPAN, Span, Tracer, format_span_tree


class FakeClock:
    """Deterministic clock: advances by a fixed step per call."""

    def __init__(self, step: float = 0.5):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner_a"):
                pass
            with tracer.span("inner_b"):
                pass
        root = tracer.finish()
        assert [c.name for c in root.children] == ["outer"]
        outer = root.children[0]
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]

    def test_durations_come_from_the_clock(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("timed"):
            pass
        span = tracer.finish().children[0]
        assert span.duration_s == pytest.approx(1.0)
        assert span.duration_ms == pytest.approx(1000.0)

    def test_attributes_and_counters(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work", label="x") as span:
            span.annotate(extra=3)
            span.incr("items", 2)
            span.incr("items", 3)
        done = tracer.finish().children[0]
        assert done.attributes == {"label": "x", "extra": 3}
        assert done.counters == {"items": 5}

    def test_tracer_incr_hits_current_span_and_registry(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("stage"):
            tracer.incr("widgets", 4)
        assert tracer.finish().children[0].counters == {"widgets": 4}
        assert tracer.metrics.counters["widgets"] == 4

    def test_current_span_tracks_nesting(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current is tracer.root
        with tracer.span("a") as a:
            assert tracer.current is a
        assert tracer.current is tracer.root

    def test_exception_annotates_and_closes_span(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        span = tracer.finish().children[0]
        assert span.end_s is not None
        assert "ValueError" in span.attributes["error"]

    def test_span_durations_feed_the_metrics_histograms(self):
        tracer = Tracer(clock=FakeClock(step=1.0))
        with tracer.span("stage"):
            pass
        with tracer.span("stage"):
            pass
        summary = tracer.metrics.histograms["span.stage"]
        assert summary.count == 2

    def test_finish_closes_spans_left_open(self):
        tracer = Tracer(clock=FakeClock())
        context = tracer.span("dangling")
        context.__enter__()
        root = tracer.finish()
        assert root.children[0].end_s is not None
        assert root.end_s is not None


class TestSpanSerialisation:
    def test_to_dict_shape(self):
        tracer = Tracer(clock=FakeClock(step=2.0))
        with tracer.span("outer", kind="demo") as span:
            span.incr("n", 1)
            with tracer.span("inner"):
                pass
        data = tracer.finish().to_dict()
        assert data["name"] == "trace"
        outer = data["children"][0]
        assert outer["name"] == "outer"
        assert outer["attributes"] == {"kind": "demo"}
        assert outer["counters"] == {"n": 1}
        assert outer["children"][0]["name"] == "inner"
        assert outer["duration_ms"] > 0

    def test_to_dict_is_json_serialisable(self):
        import json

        tracer = Tracer(clock=FakeClock())
        with tracer.span("s", label="x"):
            pass
        json.dumps(tracer.to_dict())  # must not raise


class TestFormatSpanTree:
    def test_renders_nested_outline(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("compile"):
            with tracer.span("parse"):
                pass
            with tracer.span("lower"):
                pass
        text = format_span_tree(tracer.finish())
        lines = text.splitlines()
        assert lines[0].startswith("trace")
        assert any("`- compile" in line for line in lines)
        assert any("|- parse" in line for line in lines)
        assert any("`- lower" in line for line in lines)
        assert all("ms" in line for line in lines)

    def test_long_extras_are_truncated(self):
        span = Span("busy")
        span.end_s = span.start_s = 0.0
        for i in range(12):
            span.incr(f"counter_{i}")
        text = format_span_tree(span)
        assert "(+6 more)" in text


class TestModuleLevelApi:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()
        assert obs.span("anything") is NULL_SPAN
        obs.incr("nothing")          # must not raise
        obs.annotate(ignored=True)   # must not raise
        obs.observe("nothing", 1.0)  # must not raise

    def test_null_span_supports_span_surface(self):
        with obs.span("off") as span:
            span.annotate(a=1)
            span.incr("b")
        assert span is NULL_SPAN

    def test_tracing_context_installs_and_restores(self):
        assert not obs.is_enabled()
        with obs.tracing() as tracer:
            assert obs.is_enabled()
            assert obs.current_tracer() is tracer
            with obs.span("visible") as span:
                assert span is not NULL_SPAN
                obs.incr("hits", 2)
        assert not obs.is_enabled()
        assert tracer.metrics.counters["hits"] == 2

    def test_tracing_contexts_nest(self):
        with obs.tracing() as outer:
            with obs.tracing() as inner:
                assert obs.current_tracer() is inner
            assert obs.current_tracer() is outer

    def test_tracing_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.tracing():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_enable_disable(self):
        tracer = obs.enable()
        try:
            assert obs.is_enabled()
            with obs.span("work"):
                obs.incr("n")
        finally:
            root = obs.disable()
        assert not obs.is_enabled()
        assert root.children[0].name == "work"
        assert tracer.metrics.counters["n"] == 1
