"""Tests for the opt-in per-stage profiler (repro.obs.profile)."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _profiling_off():
    """Every test starts and ends with profiling disabled."""
    obs.disable_profiling()
    yield
    obs.disable_profiling()


def _busy():
    return sum(i * i for i in range(2000))


class TestEnableDisable:
    def test_disabled_by_default(self):
        assert not obs.is_profiling()

    def test_toggle(self):
        obs.enable_profiling()
        assert obs.is_profiling()
        obs.disable_profiling()
        assert not obs.is_profiling()


class TestProfileSpan:
    def test_plain_span_when_disabled(self):
        with obs.tracing() as tracer:
            with obs.profile_span("pipeline.compile", program="x"):
                _busy()
        span = tracer.root.children[0]
        assert span.name == "pipeline.compile"
        assert "profile" not in span.attributes

    def test_attaches_hot_function_table(self):
        obs.enable_profiling(top_n=5)
        with obs.tracing() as tracer:
            with obs.profile_span("pipeline.compile"):
                _busy()
        table = tracer.root.children[0].attributes["profile"]
        assert table["total_calls"] > 0
        assert 1 <= len(table["top"]) <= 5
        row = table["top"][0]
        assert set(row) == {"func", "ncalls", "tottime_ms", "cumtime_ms"}
        # the busy loop's generator expression must be attributed here
        funcs = " ".join(r["func"] for r in table["top"])
        assert "test_profile.py" in funcs

    def test_no_tracer_means_no_profiler(self):
        obs.enable_profiling()
        with obs.profile_span("pipeline.compile") as span:
            _busy()
        assert span is obs.NULL_SPAN or not getattr(span, "attributes", None)

    def test_inner_profile_spans_degrade_to_plain(self):
        """cProfile cannot nest: only the outermost stage captures."""
        obs.enable_profiling()
        with obs.tracing() as tracer:
            with obs.profile_span("outer"):
                with obs.profile_span("inner"):
                    _busy()
        outer = tracer.root.children[0]
        inner = outer.children[0]
        assert "profile" in outer.attributes
        assert "profile" not in inner.attributes

    def test_top_n_bounds_table(self):
        obs.enable_profiling(top_n=2)
        with obs.tracing() as tracer:
            with obs.profile_span("stage"):
                _busy()
        assert len(tracer.root.children[0].attributes["profile"]["top"]) <= 2

    def test_rows_sorted_by_cumulative_time(self):
        obs.enable_profiling()
        with obs.tracing() as tracer:
            with obs.profile_span("stage"):
                _busy()
        rows = tracer.root.children[0].attributes["profile"]["top"]
        cums = [row["cumtime_ms"] for row in rows]
        assert cums == sorted(cums, reverse=True)


class TestFormatting:
    def test_format_profile_tables(self):
        obs.enable_profiling(top_n=3)
        with obs.tracing() as tracer:
            with obs.profile_span("pipeline.timing"):
                _busy()
        text = obs.format_profile_tables(tracer.root)
        assert "profile: pipeline.timing" in text
        assert "cum_ms" in text and "ncalls" in text

    def test_empty_tree_formats_empty(self):
        with obs.tracing() as tracer:
            with obs.span("plain"):
                pass
        assert obs.format_profile_tables(tracer.root) == ""

    def test_tree_lines_stay_flat(self):
        """The structured profile table must not leak onto tree lines."""
        obs.enable_profiling()
        with obs.tracing() as tracer:
            with obs.profile_span("stage"):
                _busy()
        rendered = obs.format_span_tree(tracer.finish())
        assert "profile=" not in rendered
        assert "cumtime_ms" not in rendered
