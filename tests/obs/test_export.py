"""Tests for the span-tree exporters (repro.obs.export).

The Chrome-trace round-trip here is the contract behind
``repro trace --format chrome``: every event must carry the trace-event
schema fields (``ph``/``ts``/``dur``/``pid``/``tid``), timestamps must
be non-negative and child events must nest inside their parents, so the
output loads in Perfetto / ``chrome://tracing`` unmodified.
"""

import json

import pytest

from repro import obs
from repro.obs.export import (MAIN_PID, to_chrome_trace, to_folded_stacks,
                              worker_pid_of)
from repro.obs.trace import Span


def _span(name, start_s, end_s, attributes=None):
    span = Span(name, attributes)
    span.start_s = start_s
    span.end_s = end_s
    return span


def _tree():
    """root(10ms) -> [compile(4ms) -> parse(1ms), timing(3ms)]."""
    root = _span("pipeline", 1000.0, 1000.010)
    compile_ = _span("pipeline.compile", 1000.001, 1000.005,
                     {"program": "perm"})
    compile_.children.append(_span("frontend.parse", 1000.002, 1000.003))
    timing = _span("pipeline.timing", 1000.006, 1000.009)
    timing.counters["timing.evals"] = 4
    root.children.extend([compile_, timing])
    return root


def _worker_tree():
    """A merged jobs=N shape: parallel span with two worker subtrees."""
    root = _span("pipeline", 2000.0, 2000.007)
    par = _span("pipeline.parallel", 2000.001, 2000.006)
    for pid in (4001, 4002):
        job = _span("pipeline.worker_job", 2000.002, 2000.005,
                    {"worker_pid": pid})
        job.children.append(_span("disambig.spec", 2000.003, 2000.004))
        par.children.append(job)
    root.children.append(par)
    return root


class TestChromeTrace:
    def test_envelope_and_event_schema(self):
        trace = to_chrome_trace(_tree(), process_name="repro perm")
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4
        for event in complete:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur",
                                  "pid", "tid"}
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert event["pid"] == MAIN_PID
            assert event["tid"] == 1

    def test_round_trip_preserves_structure(self):
        payload = json.dumps(to_chrome_trace(_tree()), sort_keys=True)
        trace = json.loads(payload)
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] == "X"}
        root, compile_ = by_name["pipeline"], by_name["pipeline.compile"]
        parse = by_name["frontend.parse"]
        # children nest inside parents on the microsecond timeline
        assert root["ts"] <= compile_["ts"]
        assert (compile_["ts"] + compile_["dur"]
                <= root["ts"] + root["dur"] + 1e-6)
        assert parse["ts"] >= compile_["ts"]
        # durations are microseconds
        assert root["dur"] == pytest.approx(10_000, rel=1e-6)
        assert parse["dur"] == pytest.approx(1_000, rel=1e-6)
        # attributes and counters ride in args
        assert compile_["args"]["program"] == "perm"
        assert by_name["pipeline.timing"]["args"]["counter.timing.evals"] == 4

    def test_metadata_names_every_pid_lane(self):
        trace = to_chrome_trace(_worker_tree(), process_name="repro")
        meta = {e["pid"]: e["args"]["name"] for e in trace["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert meta[MAIN_PID] == "repro"
        assert meta[4001] == "repro worker 4001"
        assert meta[4002] == "repro worker 4002"

    def test_worker_subtrees_get_own_pid_lane(self):
        trace = to_chrome_trace(_worker_tree())
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pids = {e["name"]: sorted({x["pid"] for x in complete
                                   if x["name"] == e["name"]})
                for e in complete}
        assert pids["pipeline"] == [MAIN_PID]
        assert pids["pipeline.parallel"] == [MAIN_PID]
        assert pids["pipeline.worker_job"] == [4001, 4002]
        # children of a worker span inherit the worker lane
        assert pids["disambig.spec"] == [4001, 4002]

    def test_rebases_on_earliest_start_across_processes(self):
        root = _span("pipeline", 5000.010, 5000.020)
        root.children.append(
            _span("pipeline.worker_job", 5000.000, 5000.002,
                  {"worker_pid": 77}))
        trace = to_chrome_trace(root)
        by_name = {e["name"]: e for e in trace["traceEvents"]
                   if e["ph"] == "X"}
        assert by_name["pipeline.worker_job"]["ts"] == 0
        assert by_name["pipeline"]["ts"] == pytest.approx(10_000, rel=1e-6)

    def test_live_tracer_tree_exports(self):
        with obs.tracing() as tracer:
            with obs.span("pipeline", program="x"):
                with obs.span("pipeline.compile"):
                    pass
        trace = to_chrome_trace(tracer.root)
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"pipeline", "pipeline.compile"} <= names


class TestWorkerPid:
    def test_annotated(self):
        assert worker_pid_of(Span("s", {"worker_pid": 42})) == 42

    def test_absent_or_bogus(self):
        assert worker_pid_of(Span("s")) is None
        assert worker_pid_of(Span("s", {"worker_pid": "soon"})) is None


class TestFoldedStacks:
    def test_stacks_weights_and_totals(self):
        text = to_folded_stacks(_tree())
        lines = dict(line.rsplit(" ", 1) for line in text.splitlines())
        weights = {stack: int(w) for stack, w in lines.items()}
        assert weights["pipeline;pipeline.compile;frontend.parse"] == 1000
        # self time = inclusive - children
        assert weights["pipeline;pipeline.compile"] == 3000
        assert weights["pipeline;pipeline.timing"] == 3000
        assert weights["pipeline"] == 3000
        # folded totals reproduce the root's inclusive duration
        assert sum(weights.values()) == 10_000

    def test_worker_frames_prefixed(self):
        text = to_folded_stacks(_worker_tree())
        assert ("pipeline;pipeline.parallel;worker-4001;"
                "pipeline.worker_job;disambig.spec 1000") in text

    def test_zero_self_time_spans_omitted(self):
        root = _span("a", 0.0, 0.001)
        root.children.append(_span("b", 0.0, 0.001))
        assert to_folded_stacks(root) == "a;b 1000\n"

    def test_frame_sanitisation(self):
        span = _span("odd name;with semis", 0.0, 0.001)
        assert to_folded_stacks(span) == "odd_name_with_semis 1000\n"
