"""End-to-end checks that the pipeline reports spans and metrics.

These drive the real toolchain (compile -> profile -> disambiguate ->
time) under an installed tracer and assert the observability contract:
every stage shows up in the span tree, the simulator publishes op
histograms and guard tallies, and nothing at all is recorded when
tracing is disabled.
"""

import pytest

from repro import (Disambiguator, compile_source, disambiguate,
                   evaluate_program, machine, obs, run_program)
from repro.bench.runner import BenchmarkRunner
from repro.frontend.grafting import graft_program

SOURCE = """
int a[8];
int main() {
    int i;
    for (i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
    print(a[5]);
    return 0;
}
"""


def span_names(span):
    names = {span.name}
    for child in span.children:
        names |= span_names(child)
    return names


@pytest.fixture
def traced_pipeline():
    with obs.tracing() as tracer:
        program = compile_source(SOURCE)
        reference = run_program(program)
        mach = machine(4, 6)
        view = disambiguate(program, Disambiguator.SPEC,
                            profile=reference.profile, machine=mach)
        evaluate_program(view.program, view.graphs, mach, reference.profile)
    return tracer


class TestPipelineSpans:
    def test_every_stage_appears(self, traced_pipeline):
        names = span_names(traced_pipeline.finish())
        for expected in ("frontend.compile", "frontend.parse",
                         "frontend.semantic", "frontend.lower",
                         "frontend.treegen", "passes.lower",
                         "passes.validate", "sim.run", "disambig.spec",
                         "passes.spd", "disambig.spd_transform",
                         "disambig.build_graphs", "timing.evaluate"):
            assert expected in names, expected

    def test_work_counters_recorded(self, traced_pipeline):
        counters = traced_pipeline.metrics.counters
        assert counters["depgraph.builds"] > 0
        assert counters["timing.infinite_evals"] > 0
        assert counters["sched.trees_scheduled"] > 0
        assert counters["sim.steps"] > 0

    def test_grafting_span(self):
        program = compile_source(SOURCE)
        with obs.tracing() as tracer:
            graft_program(program)
        root = tracer.finish()
        assert "frontend.graft" in span_names(root)


class TestSimulatorMetrics:
    def test_op_histogram_and_tree_counts(self):
        program = compile_source(SOURCE)
        with obs.tracing() as tracer:
            run_program(program)
        counters = tracer.metrics.counters
        # the loop body stores 8 times and multiplies 8+ times
        assert counters["sim.ops.STORE"] == 8
        assert counters["sim.ops.PRINT"] == 1
        assert counters["sim.tree_executions"] >= 9
        tree_counters = [k for k in counters if k.startswith("sim.tree.")]
        assert tree_counters, "per-tree execution counts missing"

    def test_guard_tallies_are_consistent(self):
        # if-conversion produces guarded ops in the else/then arms
        source = """
int main() {
    int i; int acc;
    acc = 0;
    for (i = 0; i < 10; i = i + 1) {
        if (i % 2 == 0) { acc = acc + i; } else { acc = acc - 1; }
    }
    print(acc);
    return 0;
}
"""
        program = compile_source(source)
        with obs.tracing() as tracer:
            run_program(program)
        counters = tracer.metrics.counters
        assert counters["sim.guard_committed"] > 0
        assert counters["sim.guard_squashed"] > 0

    def test_histogram_matches_untraced_semantics(self):
        program = compile_source(SOURCE)
        plain = run_program(program)
        with obs.tracing():
            traced = run_program(compile_source(SOURCE))
        assert plain.output == traced.output
        assert plain.steps == traced.steps


class TestDisabledIsInert:
    def test_no_tracer_no_recording(self):
        program = compile_source(SOURCE)
        reference = run_program(program)
        mach = machine(4, 6)
        view = disambiguate(program, Disambiguator.SPEC,
                            profile=reference.profile, machine=mach)
        timing = evaluate_program(view.program, view.graphs, mach,
                                  reference.profile)
        assert not obs.is_enabled()
        assert timing.cycles > 0

    def test_results_identical_with_and_without_tracing(self):
        mach = machine(5, 6)
        plain = BenchmarkRunner()
        cycles_plain = plain.timing("perm", Disambiguator.SPEC, mach).cycles
        with obs.tracing():
            traced = BenchmarkRunner()
            cycles_traced = traced.timing("perm", Disambiguator.SPEC,
                                          mach).cycles
        assert cycles_plain == cycles_traced
