"""Integration tests reproducing the paper's worked examples end-to-end."""


from repro.disambig import Disambiguator, disambiguate
from repro.frontend import compile_source
from repro.ir import ArcKind, build_dependence_graph
from repro.disambig import make_static_oracle
from repro.machine import machine
from repro.sim import evaluate_program, run_program


class TestExample21:
    """Paper Example 2-1: a[i] = ...; x = f(..., a[j], ...) — the
    canonical ambiguous RAW pair."""

    SOURCE = """
        float a[32];
        int main() {
            int i = 3; int j = 7; float x;
            a[i] = 2.5;
            x = a[j] * 4.0 + 1.0;
            print(x);
            return 0;
        }
    """

    def test_static_cannot_resolve_unbounded_scalar_subscripts(self):
        """a[i] vs a[j] with i, j arbitrary scalars: the difference
        i - j has unit gcd and no bounds, so the static disambiguator
        must answer Unknown — the dependence stays ambiguous."""
        program = compile_source(self.SOURCE)
        tree = next(t for _f, t in program.all_trees()
                    if any(op.is_store for op in t.ops))
        graph = build_dependence_graph(tree, make_static_oracle(tree))
        arcs = graph.ambiguous_arcs()
        assert len(arcs) == 1
        assert arcs[0].kind is ArcKind.MEM_RAW

    VARIABLE_SOURCE = """
        float a[32];
        int read_ij[2];
        int main() {
            int i; int j; float x;
            read_ij[0] = 3;
            read_ij[1] = 7;
            i = read_ij[0];
            j = read_ij[1];
            a[i] = 2.5;
            x = a[j] * 4.0 + 1.0;
            print(x);
            return 0;
        }
    """

    def test_dynamic_values_leave_ambiguity(self):
        program = compile_source(self.VARIABLE_SOURCE)
        trees = [t for _f, t in program.all_trees()]
        amb = []
        for tree in trees:
            graph = build_dependence_graph(tree, make_static_oracle(tree))
            amb += graph.ambiguous_arcs()
        assert any(a.kind is ArcKind.MEM_RAW for a in amb)

    def test_spd_resolves_it(self):
        program = compile_source(self.VARIABLE_SOURCE)
        reference = run_program(program)
        mach = machine(5, 6)
        static = disambiguate(program, Disambiguator.STATIC,
                              profile=reference.profile, machine=mach)
        spec = disambiguate(program, Disambiguator.SPEC,
                            profile=reference.profile, machine=mach)
        static_cycles = evaluate_program(
            static.program, static.graphs, mach, reference.profile).cycles
        spec_cycles = evaluate_program(
            spec.program, spec.graphs, mach, reference.profile).cycles
        assert spec_cycles < static_cycles
        assert reference.output_equal(run_program(spec.program.copy()))


class TestExample22:
    """Paper Example 2-2 quantitatively: STATIC answers Yes (no
    benefit), PERFECT cannot remove the arc (it aliases once), SpD wins
    for 99 of 100 iterations."""

    def test_full_ordering(self, example22_program, example22_result):
        mach = machine(5, 6)
        profile = example22_result.profile
        cycles = {}
        for kind in Disambiguator:
            view = disambiguate(example22_program, kind, profile=profile,
                                machine=mach)
            cycles[kind] = evaluate_program(view.program, view.graphs,
                                            mach, profile).cycles
        # STATIC == NAIVE: the alias is real (Yes) at i = 4
        assert cycles[Disambiguator.STATIC] == cycles[Disambiguator.NAIVE]
        # PERFECT == NAIVE too: the arc is not superfluous
        assert cycles[Disambiguator.PERFECT] == cycles[Disambiguator.NAIVE]
        # only SpD helps
        assert cycles[Disambiguator.SPEC] < cycles[Disambiguator.NAIVE]

    def test_speedup_magnitude(self, example22_program, example22_result):
        """SpD removes a full store->load round trip from the loop's
        critical path: at 6-cycle memory that is worth well over 10%."""
        mach = machine(5, 6)
        profile = example22_result.profile
        naive = disambiguate(example22_program, Disambiguator.NAIVE)
        spec = disambiguate(example22_program, Disambiguator.SPEC,
                            profile=profile, machine=mach)
        naive_cycles = evaluate_program(naive.program, naive.graphs,
                                        mach, profile).cycles
        spec_cycles = evaluate_program(spec.program, spec.graphs,
                                       mach, profile).cycles
        assert naive_cycles / spec_cycles > 1.10


class TestFigure44Shape:
    """The RAW transformation produces exactly the Figure 4-4 artefacts:
    an address compare, a forwarding path, and two guarded versions."""

    def test_artefacts(self, raw_tree_program):
        from repro.disambig import apply_spd
        from repro.ir import Opcode
        tree = raw_tree_program.functions["main"].trees["t0"]
        graph = build_dependence_graph(tree)
        arc = graph.ambiguous_arcs()[0]
        before_ops = {op.op_id for op in tree.ops}
        apply_spd(tree, arc)
        new_ops = [op for op in tree.ops if op.op_id not in before_ops]
        opcodes = [op.opcode for op in new_ops]
        assert Opcode.CMP_EQ in opcodes           # the address compare
        # the forwarding multiply (copy of the dependent op)
        assert Opcode.FMUL in opcodes or Opcode.PRINT in opcodes
        guards = [op.guard for op in tree.ops if op.guard is not None]
        assert any(g.negate for g in guards)       # the bubble
        assert any(not g.negate for g in guards)
