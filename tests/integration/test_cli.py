"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def demo_source(tmp_path):
    path = tmp_path / "demo.tc"
    path.write_text("""
int a[8];
int main() {
    int i;
    for (i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
    print(a[5]);
    return 0;
}
""")
    return str(path)


class TestRun:
    def test_runs_and_prints(self, demo_source, capsys):
        assert main(["run", demo_source]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == ["15"]

    def test_stdin(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("int main() { print(9); return 0; }"))
        assert main(["run", "-"]) == 0
        assert capsys.readouterr().out.strip() == "9"


class TestCompile:
    def test_dumps_ir(self, demo_source, capsys):
        assert main(["compile", demo_source]) == 0
        out = capsys.readouterr().out
        assert "func main" in out
        assert "store" in out and "load" in out

    def test_graft_flag(self, demo_source, capsys):
        assert main(["compile", demo_source, "--graft"]) == 0
        assert "func main" in capsys.readouterr().out


class TestAnalyze:
    def test_all_disambiguators_reported(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--fus", "4",
                     "--memory", "2"]) == 0
        out = capsys.readouterr().out
        for word in ("naive", "static", "spec", "perfect", "cycles"):
            assert word in out

    def test_infinite_machine(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--fus", "0"]) == 0
        assert "life-inffu" in capsys.readouterr().out

    def test_spd_knob_flags(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--max-expansion", "1.25",
                     "--min-gain", "0.25", "--profiled-alias"]) == 0
        assert "spec" in capsys.readouterr().out

    def test_json_unwritable_path(self, demo_source, capsys):
        assert main(["analyze", demo_source,
                     "--json", "/nonexistent-dir/out.json"]) == 2
        assert "cannot write --json output" in capsys.readouterr().err

    def test_json_export(self, demo_source, capsys, tmp_path):
        out_path = tmp_path / "analysis.json"
        assert main(["analyze", demo_source, "--fus", "4",
                     "--json", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "naive" in text  # text output still printed
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.analysis/1"
        assert set(data["disambiguators"]) == {"naive", "static", "spec",
                                               "perfect"}
        for entry in data["disambiguators"].values():
            assert entry["cycles"] > 0
        assert data["disambiguators"]["spec"]["spd_counts"].keys() == \
            {"raw", "war", "waw"}
        assert data["machine"]["num_fus"] == 4
        assert data["trace"]["name"] == "trace"
        assert "counters" in data["metrics"]


class TestBench:
    def test_known_benchmark(self, capsys):
        assert main(["bench", "perm", "--memory", "2"]) == 0
        assert "perm" in capsys.readouterr().out

    def test_unknown_benchmark(self, capsys):
        assert main(["bench", "nonesuch"]) == 2

    def test_bench_honors_spd_knobs(self, capsys):
        # an impossible MinGain suppresses every SpD application
        assert main(["bench", "perm", "--memory", "2",
                     "--min-gain", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "SpD: none" in out

    def test_json_export(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main(["bench", "perm", "--memory", "2",
                     "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.analysis/1"
        assert data["program"] == "perm"
        assert data["disambiguators"]["spec"]["cycles"] > 0


class TestTrace:
    def test_builtin_benchmark(self, capsys):
        assert main(["trace", "perm", "--memory", "2"]) == 0
        out = capsys.readouterr().out
        # nested per-pass timing tree
        for stage in ("pipeline", "frontend.compile", "frontend.parse",
                      "sim.run", "analyze.spec", "disambig.spec",
                      "timing.evaluate"):
            assert stage in out, stage
        assert "ms" in out
        assert "metrics:" in out
        assert "depgraph.builds" in out

    def test_source_file(self, demo_source, capsys):
        assert main(["trace", demo_source, "--fus", "2"]) == 0
        assert "frontend.compile" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["trace", "/no/such/file.tc"]) == 2

    def test_json_export(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "perm", "--memory", "2",
                     "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.trace/1"
        assert data["program"] == "perm"
        names = {child["name"] for child in data["trace"]["children"]}
        assert "pipeline" in names
        assert data["metrics"]["counters"]["sim.steps"] > 0


class TestListAndReport:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quick" in out and "espresso" in out

    def test_report_table6_1(self, capsys):
        assert main(["report", "table6_1"]) == 0
        assert "Integer multiplies" in capsys.readouterr().out


class TestPasses:
    def test_passes_lists_registry(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        for name in ("lower", "graft", "spd", "constfold", "copyprop", "dce"):
            assert name in out, name
        assert "default cleanup" in out

    def test_bench_with_default_cleanup(self, capsys):
        assert main(["bench", "perm", "--memory", "2",
                     "--passes", "default"]) == 0
        assert "perm" in capsys.readouterr().out

    def test_explicit_pass_list(self, capsys):
        assert main(["bench", "perm", "--memory", "2",
                     "--passes", "dce,constfold"]) == 0
        assert "perm" in capsys.readouterr().out

    def test_unknown_pass_rejected(self, capsys):
        with pytest.raises(SystemExit, match="unknown pass"):
            main(["bench", "perm", "--passes", "bogus"])

    def test_non_cleanup_pass_rejected(self, capsys):
        with pytest.raises(SystemExit, match="cannot run as a cleanup"):
            main(["bench", "perm", "--passes", "spd"])

    def test_dump_after_writes_ir_to_stderr(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--passes", "default",
                     "--dump-after", "dce"]) == 0
        err = capsys.readouterr().err
        assert "; IR after pass dce" in err
        assert "func main" in err

    def test_json_reports_per_pass_deltas(self, demo_source, capsys,
                                          tmp_path):
        out_path = tmp_path / "analysis.json"
        assert main(["analyze", demo_source, "--passes", "default",
                     "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        spec = data["disambiguators"]["spec"]
        names = [report["pass"] for report in spec["passes"]]
        assert names == ["spd", "constfold", "copyprop", "dce"]
        for report in spec["passes"]:
            assert report["ops_after"] - report["ops_before"] == \
                report["delta"]


class TestSchedule:
    def test_schedule_dump(self, demo_source, capsys):
        assert main(["schedule", demo_source, "--fus", "2",
                     "--memory", "2"]) == 0
        out = capsys.readouterr().out
        assert "slot0" in out and "cycle" in out

    def test_schedule_spec_and_filter(self, demo_source, capsys):
        assert main(["schedule", demo_source, "--fus", "2", "--spec",
                     "--tree", "for"]) == 0
        out = capsys.readouterr().out
        assert "(spec)" in out

    def test_schedule_rejects_infinite(self, demo_source, capsys):
        assert main(["schedule", demo_source, "--fus", "0"]) == 2


class TestFuzz:
    def test_small_clean_campaign(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--seed", "0", "--iterations", "2",
                     "--corpus", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "2 programs" in out
        assert "0 divergent" in out
        assert not corpus.exists()  # only created on a divergence

    def test_json_export(self, capsys, tmp_path):
        out_path = tmp_path / "fuzz.json"
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--seed", "1", "--iterations", "2",
                     "--corpus", str(corpus), "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.fuzz/1"
        assert data["seed"] == 1
        assert data["programs_generated"] == 2
        assert data["divergent_programs"] == 0
        assert data["metrics"]["counters"]["fuzz.programs_generated"] == 2

    def test_time_budget_cuts_campaign_short(self, capsys, tmp_path):
        assert main(["fuzz", "--seed", "0", "--iterations", "500",
                     "--corpus", str(tmp_path / "corpus"),
                     "--time-budget", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "time budget exhausted" in out
