"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def demo_source(tmp_path):
    path = tmp_path / "demo.tc"
    path.write_text("""
int a[8];
int main() {
    int i;
    for (i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
    print(a[5]);
    return 0;
}
""")
    return str(path)


class TestRun:
    def test_runs_and_prints(self, demo_source, capsys):
        assert main(["run", demo_source]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines() == ["15"]

    def test_stdin(self, capsys, monkeypatch):
        import io
        monkeypatch.setattr("sys.stdin",
                            io.StringIO("int main() { print(9); return 0; }"))
        assert main(["run", "-"]) == 0
        assert capsys.readouterr().out.strip() == "9"


class TestCompile:
    def test_dumps_ir(self, demo_source, capsys):
        assert main(["compile", demo_source]) == 0
        out = capsys.readouterr().out
        assert "func main" in out
        assert "store" in out and "load" in out

    def test_graft_flag(self, demo_source, capsys):
        assert main(["compile", demo_source, "--graft"]) == 0
        assert "func main" in capsys.readouterr().out


class TestAnalyze:
    def test_all_disambiguators_reported(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--fus", "4",
                     "--memory", "2"]) == 0
        out = capsys.readouterr().out
        for word in ("naive", "static", "spec", "perfect", "cycles"):
            assert word in out

    def test_infinite_machine(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--fus", "0"]) == 0
        assert "life-inffu" in capsys.readouterr().out

    def test_spd_knob_flags(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--max-expansion", "1.25",
                     "--min-gain", "0.25", "--profiled-alias"]) == 0
        assert "spec" in capsys.readouterr().out

    def test_json_unwritable_path(self, demo_source, capsys):
        assert main(["analyze", demo_source,
                     "--json", "/nonexistent-dir/out.json"]) == 2
        assert "cannot write --json output" in capsys.readouterr().err

    def test_json_export(self, demo_source, capsys, tmp_path):
        out_path = tmp_path / "analysis.json"
        assert main(["analyze", demo_source, "--fus", "4",
                     "--json", str(out_path)]) == 0
        text = capsys.readouterr().out
        assert "naive" in text  # text output still printed
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.analysis/1"
        assert set(data["disambiguators"]) == {"naive", "static", "spec",
                                               "perfect"}
        for entry in data["disambiguators"].values():
            assert entry["cycles"] > 0
        assert data["disambiguators"]["spec"]["spd_counts"].keys() == \
            {"raw", "war", "waw"}
        assert data["machine"]["num_fus"] == 4
        assert data["trace"]["name"] == "trace"
        assert "counters" in data["metrics"]


class TestBench:
    def test_known_benchmark(self, capsys):
        assert main(["bench", "perm", "--memory", "2"]) == 0
        assert "perm" in capsys.readouterr().out

    def test_unknown_benchmark(self, capsys):
        assert main(["bench", "nonesuch"]) == 2

    def test_bench_honors_spd_knobs(self, capsys):
        # an impossible MinGain suppresses every SpD application
        assert main(["bench", "perm", "--memory", "2",
                     "--min-gain", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "SpD: none" in out

    def test_json_export(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert main(["bench", "perm", "--memory", "2",
                     "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.analysis/1"
        assert data["program"] == "perm"
        assert data["disambiguators"]["spec"]["cycles"] > 0


class TestTrace:
    def test_builtin_benchmark(self, capsys):
        assert main(["trace", "perm", "--memory", "2"]) == 0
        out = capsys.readouterr().out
        # nested per-pass timing tree
        for stage in ("pipeline", "frontend.compile", "frontend.parse",
                      "sim.run", "analyze.spec", "disambig.spec",
                      "timing.evaluate"):
            assert stage in out, stage
        assert "ms" in out
        assert "metrics:" in out
        assert "depgraph.builds" in out

    def test_source_file(self, demo_source, capsys):
        assert main(["trace", demo_source, "--fus", "2"]) == 0
        assert "frontend.compile" in capsys.readouterr().out

    def test_unknown_target(self, capsys):
        assert main(["trace", "/no/such/file.tc"]) == 2

    def test_json_export(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main(["trace", "perm", "--memory", "2",
                     "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.trace/1"
        assert data["program"] == "perm"
        names = {child["name"] for child in data["trace"]["children"]}
        assert "pipeline" in names
        assert data["metrics"]["counters"]["sim.steps"] > 0


class TestTraceFormats:
    def test_chrome_export_has_all_pipeline_stages(self, capsys, tmp_path):
        out_path = tmp_path / "trace.chrome.json"
        assert main(["trace", "perm", "--memory", "2", "--hw",
                     "--format", "chrome", "--out", str(out_path)]) == 0
        trace = json.loads(out_path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        complete = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {event["name"] for event in complete}
        # all five pipeline stages appear in one trace
        for stage in ("pipeline.compile", "pipeline.profile",
                      "pipeline.disambiguate", "pipeline.timing",
                      "pipeline.hw_timing"):
            assert stage in names, stage
        for event in complete:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert "pid" in event and "tid" in event

    @pytest.mark.slow
    def test_chrome_export_merges_worker_lanes(self, capsys, tmp_path):
        out_path = tmp_path / "trace.chrome.json"
        assert main(["trace", "perm", "--memory", "2", "--jobs", "2",
                     "--format", "chrome", "--out", str(out_path)]) == 0
        trace = json.loads(out_path.read_text())
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert len(pids) >= 2  # main lane + at least one worker lane
        names = {event["name"] for event in trace["traceEvents"]}
        assert "pipeline.worker_job" in names

    def test_chrome_to_stdout_is_sorted_json(self, capsys):
        assert main(["trace", "perm", "--memory", "2",
                     "--format", "chrome"]) == 0
        payload = capsys.readouterr().out
        trace = json.loads(payload)
        assert payload == json.dumps(trace, indent=2, sort_keys=True) + "\n"

    def test_folded_stacks(self, capsys):
        assert main(["trace", "perm", "--memory", "2",
                     "--format", "folded"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line]
        assert lines
        for line in lines:
            stack, weight = line.rsplit(" ", 1)
            assert int(weight) > 0
        assert any("pipeline.profile;sim.run" in line for line in lines)

    def test_unwritable_out(self, capsys):
        assert main(["trace", "perm", "--memory", "2", "--format", "chrome",
                     "--out", "/no/such/dir/trace.json"]) == 2
        assert "cannot write" in capsys.readouterr().err

    def test_text_output_includes_percentiles(self, capsys):
        assert main(["trace", "perm", "--memory", "2"]) == 0
        out = capsys.readouterr().out
        assert "histograms (ms):" in out
        for column in ("p50", "p95", "p99"):
            assert column in out, column

    def test_profile_attaches_hot_tables(self, capsys):
        assert main(["trace", "perm", "--memory", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "profile: pipeline.profile" in out
        assert "cum_ms" in out
        # profiling is a trace-local toggle, not a sticky global
        from repro import obs
        assert not obs.is_profiling()


class TestPerfCommand:
    @staticmethod
    def _baseline(tmp_path, monkeypatch, factor=None):
        from repro.perf.measure import measure_benchmark
        monkeypatch.delenv("REPRO_PERF_INJECT", raising=False)
        measured = measure_benchmark("perm", 5, 6, str(tmp_path / "cache"))
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"benchmarks": {"perm": measured}}))
        return path

    @pytest.mark.slow
    def test_clean_check_exits_zero(self, capsys, tmp_path, monkeypatch):
        baseline = self._baseline(tmp_path, monkeypatch)
        assert main(["perf", "check", "--against", str(baseline),
                     "--names", "perm", "--threshold", "3.0",
                     "--min-ms", "50"]) == 0
        out = capsys.readouterr().out
        assert "perf check: OK" in out

    @pytest.mark.slow
    def test_injected_regression_exits_nonzero(self, capsys, tmp_path,
                                               monkeypatch):
        baseline = self._baseline(tmp_path, monkeypatch)
        monkeypatch.setenv("REPRO_PERF_INJECT", "disambiguate:40.0")
        out_json = tmp_path / "check.json"
        assert main(["perf", "check", "--against", str(baseline),
                     "--names", "perm", "--threshold", "3.0",
                     "--min-ms", "50", "--json", str(out_json)]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        payload = json.loads(out_json.read_text())
        assert payload["schema"] == "repro.perf_check/1"
        assert payload["ok"] is False

    def test_unknown_benchmark(self, capsys, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps({"benchmarks": {}}))
        assert main(["perf", "check", "--against", str(baseline),
                     "--names", "nonesuch"]) == 2

    def test_missing_baseline(self, capsys):
        assert main(["perf", "check", "--against", "/no/such/base.json",
                     "--names", "perm"]) == 2
        assert "cannot load baseline" in capsys.readouterr().err

    @pytest.mark.slow
    def test_record_appends_history(self, capsys, tmp_path, monkeypatch):
        baseline = self._baseline(tmp_path, monkeypatch)
        history = tmp_path / "history.jsonl"
        assert main(["perf", "check", "--against", str(baseline),
                     "--names", "perm", "--threshold", "3.0",
                     "--min-ms", "50", "--record", str(history)]) == 0
        from repro.perf.history import load_records
        records = load_records(history)
        assert len(records) == 1
        assert "perm" in records[0]["benchmarks"]

    def test_history_renders_trajectory(self, capsys, tmp_path):
        from repro.perf.history import append_record, make_record
        history = tmp_path / "history.jsonl"
        bench = {"perm": {"wall_ms": {"total": 100.0, "warm_total": 5.0}}}
        append_record(history, make_record("life-5fu-mem6", 5, 6, bench,
                                           sha="a" * 40,
                                           timestamp="2026-08-08T00:00:00Z"))
        assert main(["perf", "history", "--path", str(history)]) == 0
        out = capsys.readouterr().out
        assert "life-5fu-mem6" in out
        assert "aaaaaaaaaaaa" in out

    def test_history_missing_file(self, capsys, tmp_path):
        assert main(["perf", "history",
                     "--path", str(tmp_path / "none.jsonl")]) == 2


class TestListAndReport:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quick" in out and "espresso" in out

    def test_report_table6_1(self, capsys):
        assert main(["report", "table6_1"]) == 0
        assert "Integer multiplies" in capsys.readouterr().out


class TestPasses:
    def test_passes_lists_registry(self, capsys):
        assert main(["passes"]) == 0
        out = capsys.readouterr().out
        for name in ("lower", "graft", "spd", "constfold", "copyprop", "dce"):
            assert name in out, name
        assert "default cleanup" in out

    def test_bench_with_default_cleanup(self, capsys):
        assert main(["bench", "perm", "--memory", "2",
                     "--passes", "default"]) == 0
        assert "perm" in capsys.readouterr().out

    def test_explicit_pass_list(self, capsys):
        assert main(["bench", "perm", "--memory", "2",
                     "--passes", "dce,constfold"]) == 0
        assert "perm" in capsys.readouterr().out

    def test_unknown_pass_rejected(self, capsys):
        with pytest.raises(SystemExit, match="unknown pass"):
            main(["bench", "perm", "--passes", "bogus"])

    def test_non_cleanup_pass_rejected(self, capsys):
        with pytest.raises(SystemExit, match="cannot run as a cleanup"):
            main(["bench", "perm", "--passes", "spd"])

    def test_dump_after_writes_ir_to_stderr(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--passes", "default",
                     "--dump-after", "dce"]) == 0
        err = capsys.readouterr().err
        assert "; IR after pass dce" in err
        assert "func main" in err

    def test_json_reports_per_pass_deltas(self, demo_source, capsys,
                                          tmp_path):
        out_path = tmp_path / "analysis.json"
        assert main(["analyze", demo_source, "--passes", "default",
                     "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        spec = data["disambiguators"]["spec"]
        names = [report["pass"] for report in spec["passes"]]
        assert names == ["spd", "constfold", "copyprop", "dce"]
        for report in spec["passes"]:
            assert report["ops_after"] - report["ops_before"] == \
                report["delta"]


class TestSchedule:
    def test_schedule_dump(self, demo_source, capsys):
        assert main(["schedule", demo_source, "--fus", "2",
                     "--memory", "2"]) == 0
        out = capsys.readouterr().out
        assert "slot0" in out and "cycle" in out

    def test_schedule_spec_and_filter(self, demo_source, capsys):
        assert main(["schedule", demo_source, "--fus", "2", "--spec",
                     "--tree", "for"]) == 0
        out = capsys.readouterr().out
        assert "(spec)" in out

    def test_schedule_rejects_infinite(self, demo_source, capsys):
        assert main(["schedule", demo_source, "--fus", "0"]) == 2


class TestFuzz:
    def test_small_clean_campaign(self, capsys, tmp_path):
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--seed", "0", "--iterations", "2",
                     "--corpus", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "2 programs" in out
        assert "0 divergent" in out
        assert not corpus.exists()  # only created on a divergence

    def test_json_export(self, capsys, tmp_path):
        out_path = tmp_path / "fuzz.json"
        corpus = tmp_path / "corpus"
        assert main(["fuzz", "--seed", "1", "--iterations", "2",
                     "--corpus", str(corpus), "--json", str(out_path)]) == 0
        data = json.loads(out_path.read_text())
        assert data["schema"] == "repro.fuzz/1"
        assert data["seed"] == 1
        assert data["programs_generated"] == 2
        assert data["divergent_programs"] == 0
        assert data["metrics"]["counters"]["fuzz.programs_generated"] == 2

    def test_time_budget_cuts_campaign_short(self, capsys, tmp_path):
        assert main(["fuzz", "--seed", "0", "--iterations", "500",
                     "--corpus", str(tmp_path / "corpus"),
                     "--time-budget", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "time budget exhausted" in out


class TestEngineFlag:
    def test_run_engine_choices(self, demo_source, capsys):
        for engine in ("interp", "jit"):
            assert main(["run", demo_source, "--engine", engine]) == 0
            assert capsys.readouterr().out.strip() == "15"

    def test_run_rejects_unknown_engine(self, demo_source, capsys):
        with pytest.raises(SystemExit):
            main(["run", demo_source, "--engine", "nonesuch"])

    def test_run_rejects_hw_engine(self, demo_source, capsys):
        # hw is a timing model, not a semantic engine; --engine excludes it
        with pytest.raises(SystemExit):
            main(["run", demo_source, "--engine", "hw"])

    def test_bench_output_engine_invariant(self, capsys):
        """The engine changes how profiles are executed, never the
        numbers: bench output must be byte-identical across engines."""
        outputs = {}
        for engine in ("jit", "interp"):
            assert main(["bench", "perm", "--memory", "2",
                         "--engine", engine]) == 0
            outputs[engine] = capsys.readouterr().out
        assert outputs["jit"] == outputs["interp"]

    def test_analyze_accepts_engine(self, demo_source, capsys):
        assert main(["analyze", demo_source, "--fus", "4", "--memory", "2",
                     "--engine", "interp"]) == 0
        assert "spec" in capsys.readouterr().out

    def test_fuzz_engine_flag(self, capsys, tmp_path):
        assert main(["fuzz", "--seed", "0", "--iterations", "1",
                     "--corpus", str(tmp_path / "corpus"),
                     "--engine", "jit"]) == 0
        assert "0 divergent" in capsys.readouterr().out
