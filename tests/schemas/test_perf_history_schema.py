"""Validate ``perf/history.jsonl`` against its JSON schema.

Every line of the committed trajectory file must be a
``repro.perf_history/1`` record (``tests/schemas/perf_history.schema.json``);
the same schema structurally pins what :func:`repro.perf.history.make_record`
will append next.
"""

import json
from pathlib import Path

import pytest

jsonschema = pytest.importorskip("jsonschema")

HERE = Path(__file__).parent
REPO = HERE.parent.parent
SCHEMA = json.loads((HERE / "perf_history.schema.json").read_text())
HISTORY = REPO / "perf" / "history.jsonl"


def _records():
    return [json.loads(line)
            for line in HISTORY.read_text().splitlines() if line.strip()]


def test_schema_itself_is_well_formed():
    jsonschema.Draft7Validator.check_schema(SCHEMA)


def test_committed_history_lines_validate():
    records = _records()
    assert records, "perf/history.jsonl must hold at least one record"
    validator = jsonschema.Draft7Validator(SCHEMA)
    for index, record in enumerate(records):
        validator.validate(record), index


def test_fresh_record_validates():
    """What make_record produces now must satisfy the schema too."""
    from repro.perf.history import make_record

    record = make_record(
        "life-5fu-mem6", 5, 6,
        {"perm": {"wall_ms": {"compile_profile": 1.0, "disambiguate": 2.0,
                              "timing": 3.0, "total": 6.0,
                              "warm_total": 0.5},
                  "counters": {"sim.steps": 100},
                  "stage_spans": {"timing": {"count": 4, "mean": 0.7,
                                             "p50": 0.6, "p95": 1.0,
                                             "p99": 1.1}}}},
        sha="0" * 40, timestamp="2026-08-08T00:00:00Z")
    jsonschema.Draft7Validator(SCHEMA).validate(record)


def test_schema_rejects_mutations():
    record = _records()[-1]
    validator = jsonschema.Draft7Validator(SCHEMA)

    def invalid(mutate):
        payload = json.loads(json.dumps(record))
        mutate(payload)
        return not validator.is_valid(payload)

    name = next(iter(record["benchmarks"]))
    assert invalid(lambda p: p.update(schema="repro.perf_history/0"))
    assert invalid(lambda p: p.pop("git_sha"))
    assert invalid(lambda p: p.update(timestamp="yesterday"))
    assert invalid(lambda p: p["machine"].pop("num_fus"))
    assert invalid(lambda p: p["benchmarks"][name]["wall_ms"].pop("total"))
    assert invalid(
        lambda p: p["benchmarks"][name]["wall_ms"].update(total=-1))
    assert invalid(lambda p: p["benchmarks"][name].update(surprise=1))
