"""Validate ``BENCH_corpus.json`` — committed and freshly produced —
against its JSON schema.

The schema (``tests/schemas/bench_corpus.schema.json``) is the contract
for the ``repro.bench_corpus/1`` payload of ``repro bench --corpus``;
the CI corpus-smoke job validates its artifact against the same file.
"""

import json
from pathlib import Path

import pytest

jsonschema = pytest.importorskip("jsonschema")

HERE = Path(__file__).parent
REPO = HERE.parent.parent
SCHEMA = json.loads((HERE / "bench_corpus.schema.json").read_text())
PAYLOAD = json.loads((REPO / "BENCH_corpus.json").read_text())


def test_schema_itself_is_well_formed():
    jsonschema.Draft7Validator.check_schema(SCHEMA)


def test_committed_payload_validates():
    jsonschema.Draft7Validator(SCHEMA).validate(PAYLOAD)


def test_fresh_payloads_validate(tmp_path):
    """Both determinism tiers validate: with lab telemetry and --stable."""
    from repro.corpus import BuildSpec, build_manifest, run_corpus_bench
    from repro.machine.description import machine
    from repro.pipeline.core import Pipeline

    manifest = build_manifest(
        BuildSpec(target_size=6, per_config=2, smoke_size=4,
                  configs=("s-lo", "s-hi")))
    validator = jsonschema.Draft7Validator(SCHEMA)
    for stable in (False, True):
        payload = run_corpus_bench(Pipeline(), manifest, machine(5, 6),
                                   stratum="smoke", jobs=1, stable=stable)
        validator.validate(payload)
    assert payload["lab"] is None  # the stable run came last


def test_schema_rejects_mutations():
    """The schema is load-bearing: canonical breakages must fail."""
    validator = jsonschema.Draft7Validator(SCHEMA)

    def invalid(mutate):
        payload = json.loads(json.dumps(PAYLOAD))
        mutate(payload)
        return not validator.is_valid(payload)

    stratum = next(iter(PAYLOAD["strata"]))
    assert invalid(lambda p: p.update(schema="repro.bench_corpus/0"))
    assert invalid(lambda p: p.pop("totals"))
    assert invalid(lambda p: p.pop("lab"))
    assert invalid(lambda p: p["manifest"].update(entries=0))
    assert invalid(lambda p: p["selection"].update(programs=0))
    assert invalid(lambda p: p["machine"].update(num_fus=0))
    assert invalid(lambda p: p.update(strata={}))
    assert invalid(lambda p: p["strata"][stratum]["cycles"].pop("spec"))
    assert invalid(
        lambda p: p["strata"][stratum]["spd"].update(application_rate=1.5))
    assert invalid(
        lambda p: p["strata"][stratum]["spd"]["applications"].update(raw=-1))
    assert invalid(lambda p: p["totals"].update(surprise=1))
    assert invalid(
        lambda p: p["totals"].update(geomean_speedup_spec_over_naive=0))
    if PAYLOAD["lab"] is not None:
        assert invalid(lambda p: p["lab"]["cache"].pop("shard_evictions"))
        assert invalid(lambda p: p["lab"].update(jobs=0))


def test_committed_payload_is_internally_consistent():
    """Cross-field invariants the schema language cannot express."""
    totals = PAYLOAD["totals"]
    strata = PAYLOAD["strata"].values()
    assert totals["programs"] == sum(s["programs"] for s in strata)
    assert totals["cycles"]["naive"] == sum(
        s["cycles"]["naive"] for s in strata)
    assert totals["cycles"]["spec"] == sum(
        s["cycles"]["spec"] for s in strata)
    assert totals["spd"]["programs_applied"] == sum(
        s["spd"]["programs_applied"] for s in strata)
    for bucket in list(strata) + [totals]:
        assert bucket["spd"]["programs_applied"] <= bucket["programs"]
        assert bucket["spd"]["application_rate"] == pytest.approx(
            bucket["spd"]["programs_applied"] / bucket["programs"],
            abs=1e-5)
    assert (PAYLOAD["selection"]["programs"] == totals["programs"])
