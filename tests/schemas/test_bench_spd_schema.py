"""Validate the checked-in ``BENCH_spd.json`` against its JSON schema.

The schema (``tests/schemas/bench_spd.schema.json``) is the contract for
the ``repro.bench_spd/3`` payload that ``benchmarks/bench_spd.py`` emits
and downstream dashboards consume; this test pins both the committed
artifact and, structurally, anything the benchmark will produce next.
"""

import json
from pathlib import Path

import pytest

jsonschema = pytest.importorskip("jsonschema")

HERE = Path(__file__).parent
REPO = HERE.parent.parent
SCHEMA = json.loads((HERE / "bench_spd.schema.json").read_text())
PAYLOAD = json.loads((REPO / "BENCH_spd.json").read_text())


def test_schema_itself_is_well_formed():
    jsonschema.Draft7Validator.check_schema(SCHEMA)


def test_committed_payload_validates():
    jsonschema.Draft7Validator(SCHEMA).validate(PAYLOAD)


def test_schema_rejects_mutations():
    """The schema is load-bearing: canonical breakages must fail."""
    validator = jsonschema.Draft7Validator(SCHEMA)

    def invalid(mutate):
        payload = json.loads(json.dumps(PAYLOAD))
        mutate(payload)
        return not validator.is_valid(payload)

    name = next(iter(PAYLOAD["benchmarks"]))
    assert invalid(lambda p: p.update(schema="repro.bench_spd/2"))
    assert invalid(lambda p: p.pop("machine"))
    assert invalid(lambda p: p.update(num_fus=0))
    assert invalid(lambda p: p["benchmarks"][name].pop("cycles"))
    assert invalid(lambda p: p["benchmarks"][name]["cycles"].pop("spec"))
    assert invalid(
        lambda p: p["benchmarks"][name]["cycles"].update(naive=-1))
    assert invalid(
        lambda p: p["benchmarks"][name]["spd_applications"].update(raw=-2))
    assert invalid(lambda p: p["benchmarks"][name].update(surprise=1))


def test_payload_is_internally_consistent():
    """Cross-field invariants the schema language cannot express."""
    for name, bench in PAYLOAD["benchmarks"].items():
        cycles = bench["cycles"]
        # perfect disambiguation can never lose to the naive view
        assert cycles["perfect"] <= cycles["naive"], name
        # recorded speedups match the cycle counts they summarise
        for view, speedup in bench["speedup_over_naive"].items():
            expected = cycles["naive"] / cycles[view] - 1.0
            assert speedup == pytest.approx(expected, abs=1e-4), (
                name, view)
        # code growth matches the spec view's op count
        growth = bench["spec_code_size"] / bench["ops"] - 1.0
        assert bench["code_growth"] == pytest.approx(growth, abs=1e-4), name
