"""Tests for the VLIW schedule dumper."""

from repro.ir import Opcode, TreeBuilder, build_dependence_graph
from repro.machine import machine
from repro.sched import dump_tree_schedule, format_schedule, list_schedule


def sample_graph():
    builder = TreeBuilder("t")
    value = builder.value(Opcode.FADD, [1.0, 2.0])
    builder.store(value, 100)
    loaded = builder.load(101, "float")
    builder.emit(Opcode.PRINT, [loaded])
    builder.halt()
    return build_dependence_graph(builder.tree)


class TestFormatSchedule:
    def test_every_issued_node_appears(self):
        graph = sample_graph()
        mach = machine(2, 2)
        schedule = list_schedule(graph, mach)
        text = format_schedule(graph, schedule)
        assert "store" in text and "load" in text and "print" in text
        assert "branch:halt" in text

    def test_header_has_slot_columns(self):
        graph = sample_graph()
        text = dump_tree_schedule(graph, machine(3, 2))
        header = text.splitlines()[0]
        assert "slot0" in header and "slot2" in header

    def test_length_and_utilization_reported(self):
        graph = sample_graph()
        text = dump_tree_schedule(graph, machine(2, 6))
        assert "length" in text and "utilization" in text

    def test_guards_visible(self):
        from repro.ir import Guard
        builder = TreeBuilder("t")
        cond = builder.value(Opcode.CMP_LT, [1, 2])
        builder.store(1.5, 100, guard=Guard(cond, negate=True))
        builder.halt()
        graph = build_dependence_graph(builder.tree)
        text = dump_tree_schedule(graph, machine(2, 2))
        assert f"[!{cond.name}]" in text


class TestFormattingEdgeCases:
    def test_cells_truncate_to_width(self):
        graph = sample_graph()
        mach = machine(2, 2)
        schedule = list_schedule(graph, mach)
        text = format_schedule(graph, schedule, width=10)
        for line in text.splitlines()[2:-1]:
            # "cycle" gutter (7 chars) + 2 slots of 10
            assert len(line) <= 7 + 2 * 10

    def test_empty_schedule_renders_header_and_footer(self):
        from repro.sched.schedule import Schedule
        graph = sample_graph()
        empty = Schedule(issue=[], completion=[], path_times=[], num_fus=2)
        text = format_schedule(graph, empty)
        assert "slot0" in text
        assert "utilization" in text

    def test_single_op_tree(self):
        builder = TreeBuilder("tiny")
        builder.halt()
        graph = build_dependence_graph(builder.tree)
        text = dump_tree_schedule(graph, machine(1, 2))
        assert "branch:halt" in text
        assert "length" in text

    def test_every_cycle_row_present(self):
        graph = sample_graph()
        mach = machine(1, 6)
        schedule = list_schedule(graph, mach)
        text = format_schedule(graph, schedule)
        body = text.splitlines()[2:-1]
        assert len(body) == max(schedule.issue) + 1
        for cycle, line in enumerate(body):
            assert line.startswith(f"{cycle:5d}")
