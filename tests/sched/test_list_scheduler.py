"""Unit tests for the resource-constrained list scheduler."""

import pytest

from repro.ir import Opcode, TreeBuilder, build_dependence_graph
from repro.machine import machine
from repro.sched import list_schedule, schedule_tree
from repro.sim import infinite_machine_timing


def wide_tree(num_independent=8):
    b = TreeBuilder("t")
    for i in range(num_independent):
        b.value(Opcode.ADD, [i, 1])
    b.halt()
    return b.tree


class TestResourceLimits:
    def test_slot_capacity_respected(self):
        tree = wide_tree(8)
        graph = build_dependence_graph(tree)
        for width in (1, 2, 4):
            schedule = list_schedule(graph, machine(width, 2))
            for _cycle, nodes in schedule.slots.items():
                assert len(nodes) <= width

    def test_narrow_machine_serialises(self):
        tree = wide_tree(8)
        graph = build_dependence_graph(tree)
        one = list_schedule(graph, machine(1, 2))
        eight = list_schedule(graph, machine(8, 2))
        # 8 adds + 1 exit on a 1-wide machine: 9 issue cycles
        assert max(one.issue) == 8
        assert max(eight.issue) <= 2

    def test_all_nodes_scheduled(self):
        tree = wide_tree(5)
        graph = build_dependence_graph(tree)
        schedule = list_schedule(graph, machine(2, 2))
        assert all(c >= 0 for c in schedule.issue)
        assert all(c >= 0 for c in schedule.completion)

    def test_infinite_machine_rejected(self):
        graph = build_dependence_graph(wide_tree(2))
        with pytest.raises(ValueError):
            list_schedule(graph, machine(None, 2))


class TestConstraintSatisfaction:
    def check_constraints(self, graph, schedule):
        from repro.sim.timing import issue_constraint
        for node in range(graph.num_nodes):
            for arc in graph.preds(node):
                earliest = issue_constraint(arc, schedule.issue,
                                            schedule.completion)
                assert schedule.issue[node] >= earliest, arc

    def test_constraints_hold_on_compiled_trees(self, example22_program):
        for _f, tree in example22_program.all_trees():
            graph = build_dependence_graph(tree)
            for width in (1, 3):
                schedule = list_schedule(graph, machine(width, 6))
                self.check_constraints(graph, schedule)

    def test_schedule_never_beats_infinite_machine(self, example22_program):
        for _f, tree in example22_program.all_trees():
            graph = build_dependence_graph(tree)
            for mem in (2, 6):
                mach = machine(None, mem)
                ideal = infinite_machine_timing(graph, mach)
                for width in (1, 2, 5):
                    schedule = list_schedule(graph, machine(width, mem))
                    for ideal_t, real_t in zip(ideal.path_times,
                                               schedule.path_times):
                        assert real_t >= ideal_t

    def test_wide_machine_converges_to_infinite(self, example22_program):
        for _f, tree in example22_program.all_trees():
            graph = build_dependence_graph(tree)
            mach = machine(None, 2)
            ideal = infinite_machine_timing(graph, mach)
            schedule = list_schedule(graph, machine(64, 2))
            assert schedule.path_times == ideal.path_times


class TestScheduleMetrics:
    def test_utilization_bounds(self):
        tree = wide_tree(6)
        graph = build_dependence_graph(tree)
        schedule = list_schedule(graph, machine(2, 2))
        assert 0 < schedule.utilization() <= 1

    def test_words_ordered_by_cycle(self):
        tree = wide_tree(6)
        graph = build_dependence_graph(tree)
        schedule = list_schedule(graph, machine(2, 2))
        cycles = [cycle for cycle, _nodes in schedule.words()]
        assert cycles == sorted(cycles)


class TestScheduleTreeDispatch:
    def test_infinite_goes_to_dataflow_model(self):
        graph = build_dependence_graph(wide_tree(3))
        timing = schedule_tree(graph, machine(None, 2))
        assert timing.path_times == infinite_machine_timing(
            graph, machine(None, 2)).path_times

    def test_finite_goes_to_list_scheduler(self):
        graph = build_dependence_graph(wide_tree(3))
        timing = schedule_tree(graph, machine(1, 2))
        assert max(timing.issue) >= 3  # serialised
