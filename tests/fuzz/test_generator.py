"""Tests for the seeded tinyc program generator."""

import random

import pytest

from repro.frontend import compile_source
from repro.fuzz import GeneratorConfig, ProgramGenerator, generate_program, program_seed
from repro.sim.interpreter import Interpreter


class TestDeterminism:
    def test_same_seed_same_program(self):
        assert generate_program(42) == generate_program(42)

    def test_config_changes_program(self):
        small = GeneratorConfig(max_toplevel_stmts=3, enable_floats=False,
                                enable_matrix=False)
        assert generate_program(42, small) != generate_program(42)

    def test_distinct_seeds_vary(self):
        programs = {generate_program(seed) for seed in range(8)}
        assert len(programs) == 8

    def test_no_global_random_state(self):
        """The generator must thread its own Random — never the module
        state — or two interleaved campaigns would perturb each other."""
        random.seed(1234)
        before = random.getstate()
        generate_program(7)
        ProgramGenerator(seed=9).generate()
        assert random.getstate() == before

    def test_explicit_rng_overrides_seed(self):
        a = ProgramGenerator(seed=0, rng=random.Random(5)).generate()
        b = ProgramGenerator(seed=99, rng=random.Random(5)).generate()
        assert a == b

    def test_program_seed_is_injective_per_campaign(self):
        seeds = [program_seed(3, i) for i in range(100)]
        assert len(set(seeds)) == 100
        assert program_seed(3, 0) != program_seed(4, 0)


class TestSafetyByConstruction:
    @pytest.mark.parametrize("seed", range(12))
    def test_generated_programs_compile_and_run(self, seed):
        source = generate_program(seed)
        program = compile_source(source)
        result = Interpreter(program, max_steps=5_000_000).run()
        # the observability tail always dumps the arrays and scalars
        assert len(result.output) >= 2 * GeneratorConfig().array_size

    def test_one_statement_per_line(self):
        """The reducer removes whole lines; multi-statement lines would
        make single deletions coarser than necessary."""
        for seed in range(5):
            for line in generate_program(seed).splitlines():
                assert line.count(";") <= 1 or line.lstrip().startswith("for")


class TestConfigValidation:
    def test_array_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            GeneratorConfig(array_size=12)

    def test_at_least_one_scalar(self):
        with pytest.raises(ValueError):
            GeneratorConfig(num_scalars=0)
