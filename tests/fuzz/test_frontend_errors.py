"""Frontend error-path tests: malformed programs must raise structured
:class:`~repro.frontend.errors.CompileError`, never crash.

The reducer feeds arbitrarily mutilated programs through
``compile_source``; any other exception type escaping the frontend
aborts a whole fuzzing campaign (see the guard in
``repro.fuzz.oracle.check_source``).
"""

import pytest

from repro.frontend import compile_source
from repro.frontend.errors import CompileError

MALFORMED = {
    "unclosed_function": "int main() { int x = 1;",
    "unclosed_block": "int main() { if (1 > 0) { print(1); return 0; }",
    "unclosed_paren": "int main() { print((1 + 2); return 0; }",
    "missing_semicolon": "int main() { int x = 1 return x; }",
    "empty_condition": "int main() { if () { print(1); } return 0; }",
    "dangling_operator": "int main() { int x = 1 + ; return x; }",
    "bad_guard_expression": "int main() { if (1 >) { print(1); } return 0; }",
    "garbage_tokens": "int main() { @#$%^&; return 0; }",
    "stray_else": "int main() { else { print(1); } return 0; }",
    "unknown_function": "int main() { frob(3); return 0; }",
    "duplicate_global": "int a[4];\nint a[4];\nint main() { return 0; }",
    "no_main": "int helper() { return 1; }",
    "zero_size_array": "int ga[0];\nint main() { return 0; }",
    "negative_size_array": "int ga[-2];\nint main() { return 0; }",
    "zero_size_local_array": "int main() { int b[0]; return 0; }",
    "zero_size_matrix": "int gm[4][0];\nint main() { return 0; }",
}


@pytest.mark.parametrize("source", MALFORMED.values(),
                         ids=MALFORMED.keys())
def test_malformed_raises_compile_error(source):
    with pytest.raises(CompileError):
        compile_source(source)


def test_error_carries_location():
    try:
        compile_source("int main() {\nint x = ;\nreturn 0;\n}")
    except CompileError as exc:
        assert exc.line >= 1
    else:  # pragma: no cover
        pytest.fail("expected CompileError")


def test_reducer_mutilations_never_crash():
    """Chop a valid program at every line boundary: each prefix either
    compiles or raises CompileError."""
    from repro.fuzz import generate_program

    lines = generate_program(0).splitlines()
    for cut in range(1, len(lines)):
        source = "\n".join(lines[:cut]) + "\n"
        try:
            compile_source(source)
        except CompileError:
            pass
