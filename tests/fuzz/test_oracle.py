"""Tests for the differential conformance oracle."""

import dataclasses
from pathlib import Path

import pytest

import repro.fuzz.oracle as oracle_mod
from repro.disambig.pipeline import Disambiguator, disambiguate
from repro.fuzz import OracleConfig, check_source, generate_program, make_divergence_predicate

CORPUS = Path(__file__).parent / "corpus"

#: Cheap configuration for tests that only need the view sweep.
FAST = OracleConfig(check_grafted=False, sweep_sequences=((),),
                    cleanup_sequences=((),), finite_fus=(2,))


class TestCleanPipeline:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generated_programs_conform(self, seed):
        report = check_source(generate_program(seed))
        assert report.error is None
        assert report.ok, [d.to_dict() for d in report.divergences]
        assert report.views_checked > 0
        assert report.timings_checked > 0

    @pytest.mark.parametrize("entry", sorted(CORPUS.glob("*.tc")),
                             ids=lambda p: p.stem)
    def test_pinned_corpus_conforms(self, entry):
        """Reduced reproducers of past (intentionally injected) bugs:
        the full oracle must stay silent on them on correct code."""
        report = check_source(entry.read_text())
        assert report.error is None
        assert report.ok, [d.to_dict() for d in report.divergences]

    def test_compile_error_is_reported_not_raised(self):
        report = check_source("int main() { return 0;")
        assert report.error is not None
        assert not report.divergences


#: A diamond whose SPEC view contains a guarded store: the shape the
#: corpus reproducers pinned down (see corpus/guard_commit_raw_a.tc).
DIAMOND = CORPUS.joinpath("guard_commit_raw_a.tc").read_text()


def _corrupting_disambiguate(program, kind, **kwargs):
    """A stand-in miscompiler: drop every store guard from SPEC views.

    Emulates the bug family repro.fuzz hunts — a transform whose
    commit condition forgets the store's guard — without editing
    spd_transform.  Only private copies are touched; pass-free views
    alias the caller's program and must stay intact.
    """
    view = disambiguate(program, kind, **kwargs)
    if kind is Disambiguator.SPEC and view.program is not program:
        for _fname, tree in view.program.all_trees():
            for i, op in enumerate(tree.ops):
                if op.is_store and op.guard is not None:
                    tree.ops[i] = dataclasses.replace(op, guard=None)
    return view


class TestInjectedBug:
    def test_dropped_store_guard_is_caught(self, monkeypatch):
        monkeypatch.setattr(oracle_mod, "disambiguate",
                            _corrupting_disambiguate)
        report = check_source(DIAMOND, FAST)
        assert report.error is None
        assert not report.ok
        kinds = {d.kind for d in report.divergences}
        assert kinds & {"output", "memory", "return"}

    def test_predicate_tracks_divergence(self, monkeypatch):
        predicate = make_divergence_predicate(FAST)
        assert predicate(DIAMOND) is False
        monkeypatch.setattr(oracle_mod, "disambiguate",
                            _corrupting_disambiguate)
        assert predicate(DIAMOND) is True
        # a program that stops compiling is NOT a divergence
        assert predicate("int main() {") is False


class TestBackendRegistry:
    def test_semantic_engines_are_default_backends(self):
        from repro.fuzz.oracle import execution_backend_names
        names = execution_backend_names()
        assert names[0] == "interp"
        assert "jit" in names
        assert "hw" not in names  # timing model, not a semantic backend

    def test_registered_backend_participates(self):
        """A buggy extra backend must surface as a divergence — proof
        that registration wires it into the differential loop."""
        from repro.engines import get_engine
        from repro.fuzz.oracle import (_EXTRA_BACKENDS,
                                       register_execution_backend)

        def lying_backend(program, **kwargs):
            executor = get_engine("interp").executor(program, **kwargs)
            original_run = executor.run

            def run(args=()):
                result = original_run(args)
                result.output.append(42)  # corrupt an observable
                return result

            executor.run = run
            return executor

        register_execution_backend("lying", lying_backend)
        try:
            report = check_source(DIAMOND, FAST)
        finally:
            _EXTRA_BACKENDS.pop("lying")
        assert report.error is None
        assert not report.ok
        assert any("@lying" in d.stage for d in report.divergences)

    def test_engines_subset_is_honoured(self):
        """Restricting OracleConfig.engines to interp skips the jit
        cross-check entirely (and still conforms)."""
        config = dataclasses.replace(FAST, engines=("interp",))
        report = check_source(DIAMOND, config)
        assert report.error is None
        assert report.ok, [d.to_dict() for d in report.divergences]
