"""Tests for the delta-debugging reducer."""

from pathlib import Path

from repro.frontend import compile_source
from repro.frontend.errors import CompileError
from repro.fuzz import generate_program, reduce_source

CORPUS = Path(__file__).parent / "corpus"


def _compiles(source: str) -> bool:
    try:
        compile_source(source)
    except (CompileError, Exception):
        return False
    return True


class TestSyntheticPredicates:
    def test_keeps_only_the_marker(self):
        source = "\n".join([
            "int ga[8];",
            "int main() {",
            "int x = 1;",
            "ga[3] = 7;",
            "x = x + 2;",
            "print(x);",
            "return 0;",
            "}",
        ]) + "\n"
        result = reduce_source(source, lambda s: "ga[3] = 7;" in s)
        assert "ga[3] = 7;" in result.source
        assert result.final_lines == 1
        assert result.reduced

    def test_blocks_never_split(self):
        """Unit deletion removes brace-balanced spans, so intermediate
        candidates (and the result) keep braces balanced."""
        seen = []

        def predicate(s: str) -> bool:
            seen.append(s)
            return "ga[" in s

        result = reduce_source(generate_program(0), predicate)
        for candidate in seen:
            assert candidate.count("{") == candidate.count("}")
        assert "ga[" in result.source

    def test_fixpoint_is_stable(self):
        """Re-reducing the minimal form must change nothing — this is
        what makes pinned corpus entries reproducible."""
        predicate = lambda s: "print(" in s
        first = reduce_source(generate_program(3), predicate)
        second = reduce_source(first.source, predicate)
        assert second.source == first.source
        assert not second.reduced

    def test_predicate_must_hold_on_input(self):
        result = reduce_source("int main() { return 0; }\n",
                               lambda s: "nonexistent" in s)
        assert result.final_lines == result.initial_lines
        assert result.tests == 1

    def test_max_tests_bounds_predicate_calls(self):
        calls = []

        def predicate(s: str) -> bool:
            calls.append(s)
            return "main" in s

        reduce_source(generate_program(1), predicate, max_tests=25)
        assert len(calls) <= 25


class TestCompilingPredicates:
    def test_reduced_form_still_compiles(self):
        """With compilation folded into the predicate, the minimal form
        is a well-formed tinyc program containing the feature of
        interest — the shape every corpus entry has."""
        source = generate_program(2)
        assert _compiles(source)
        predicate = lambda s: _compiles(s) and "ga[" in s
        result = reduce_source(source, predicate, max_tests=600)
        assert _compiles(result.source)
        assert "ga[" in result.source
        assert result.final_lines < result.initial_lines

    def test_pinned_corpus_is_minimal_under_its_shape(self):
        """The pinned reproducers are fixpoints of a structural
        predicate: nothing can be deleted without losing the guarded
        store/load diamond they exist to pin."""
        entry = CORPUS.joinpath("guard_commit_raw_a.tc").read_text()

        def has_diamond(s: str) -> bool:
            return (_compiles(s) and "if (" in s and "} else {" in s
                    and "for (" in s)

        result = reduce_source(entry, has_diamond, max_tests=600)
        stripped = [ln for ln in entry.splitlines()
                    if ln.strip() and not ln.startswith("//")]
        assert result.final_lines <= len(stripped)
