"""The process-wide compiled-code cache: bounding, reuse, observability."""

import pytest

from repro import obs
from repro.engines import jit
from repro.engines.codegen import generate_tree_source
from repro.engines.jit import (clear_code_cache, code_cache_size, compiled_fn,
                               run_program_jit)


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test starts (and leaves) an empty process-wide cache."""
    clear_code_cache()
    yield
    clear_code_cache()


def _sources(n):
    """*n* distinct-but-trivial generated-source stand-ins (the cache
    keys on source text, so any text exercises it)."""
    return [f"def _tree_fn(regs, memory, interp):\n    return {i}\n"
            for i in range(n)]


class TestCodeCache:
    def test_hit_returns_same_function(self):
        source = _sources(1)[0]
        first = compiled_fn(source)
        second = compiled_fn(source)
        assert first is second
        assert code_cache_size() == 1

    def test_lru_eviction_beyond_capacity(self, monkeypatch):
        monkeypatch.setattr(jit, "CODE_CACHE_CAPACITY", 4)
        sources = _sources(6)
        for source in sources:
            compiled_fn(source)
        assert code_cache_size() == 4
        # the two oldest were evicted; re-requesting recompiles
        survivors = set(jit._code_cache)
        assert sources[0] not in survivors
        assert sources[1] not in survivors
        assert sources[5] in survivors

    def test_recently_used_survives_eviction(self, monkeypatch):
        monkeypatch.setattr(jit, "CODE_CACHE_CAPACITY", 2)
        a, b, c = _sources(3)
        compiled_fn(a)
        compiled_fn(b)
        compiled_fn(a)  # refresh a; b is now LRU
        compiled_fn(c)
        assert a in jit._code_cache
        assert b not in jit._code_cache

    def test_counters_under_tracing(self, monkeypatch):
        monkeypatch.setattr(jit, "CODE_CACHE_CAPACITY", 2)
        sources = _sources(3)
        with obs.tracing() as tracer:
            for source in sources:
                compiled_fn(source)   # 3 misses, 3 compiles, 1 eviction
            compiled_fn(sources[2])   # 1 hit
        counters = tracer.metrics.counters
        assert counters["engines.jit.cache_misses"] == 3
        assert counters["engines.jit.compiles"] == 3
        assert counters["engines.jit.cache_evictions"] == 1
        assert counters["engines.jit.cache_hits"] == 1


class TestTreeSharing:
    def test_identical_trees_share_compilation(self, example22_program):
        """Two programs with identical tree structure compile once:
        the generated source is a structural fingerprint."""
        with obs.tracing() as tracer:
            run_program_jit(example22_program.copy())
            first = dict(tracer.metrics.counters)
            run_program_jit(example22_program.copy())
            second = dict(tracer.metrics.counters)
        assert second["engines.jit.compiles"] == first["engines.jit.compiles"]
        assert (second.get("engines.jit.cache_hits", 0)
                > first.get("engines.jit.cache_hits", 0))

    def test_generated_source_is_deterministic(self, example22_program):
        trees = [tree for _fn, tree in example22_program.all_trees()]
        for tree in trees:
            assert (generate_tree_source(tree)
                    == generate_tree_source(tree))

    def test_profile_variant_is_a_distinct_key(self, example22_program):
        _fn, tree = next(iter(example22_program.all_trees()))
        assert (generate_tree_source(tree, collect_profile=True)
                != generate_tree_source(tree, collect_profile=False))
