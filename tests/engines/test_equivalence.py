"""Differential equivalence: the ``jit`` engine vs the reference interpreter.

Every observable axis must agree — printed output, return value, step
count, final memory image, the ordered store trace, and the full
execution profile (tree/exit counts, alias-pair statistics, dynamic
operation count).  The suite covers all fourteen benchmarks, the SpD
knob grid on the alias-heavy subset (the transformed SPEC views are the
programs most likely to expose a miscompile: guard chains, duplicated
exits, speculative loads), FU-sweep schedule cycles derived from each
engine's profile, and the pinned fuzz-corpus reproducers.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.suite import benchmark_names, get_benchmark
from repro.disambig import Disambiguator, disambiguate
from repro.disambig.spd_heuristic import SpDConfig
from repro.engines import get_engine
from repro.frontend import compile_source
from repro.machine.description import machine
from repro.sim.evaluate import evaluate_program
from repro.sim.interpreter import InterpreterError

CORPUS = Path(__file__).parent.parent / "fuzz" / "corpus"

#: Benchmarks with ambiguous memory pairs — the SpD transform actually
#: fires on these, so their SPEC views are the interesting grid inputs.
GRID_BENCHMARKS = ("fft", "moment", "perm", "quick")

#: Heuristic knob grid: default, conservative (tight expansion, high
#: gain bar), and profile-weighted aggressive.
SPD_GRID = (
    SpDConfig(),
    SpDConfig(max_expansion=1.2, min_gain=1.0),
    SpDConfig(assumed_alias_probability=0.25,
              alias_probability_weighting=True),
)

_programs = {}


def _program(name):
    if name not in _programs:
        _programs[name] = compile_source(get_benchmark(name).source)
    return _programs[name]


def _execute(engine, program):
    """Run *program* under *engine*; returns every comparable observable."""
    executor = get_engine(engine).executor(program.copy(), trace_stores=True)
    try:
        result = executor.run()
    except InterpreterError as exc:
        return {"error": str(exc), "output": list(executor.output),
                "memory": list(executor.memory),
                "store_trace": list(executor.store_trace)}
    return {
        "error": None,
        "output": list(result.output),
        "return_value": result.return_value,
        "steps": result.steps,
        "memory": list(executor.memory),
        "store_trace": list(executor.store_trace),
        "tree_counts": dict(result.profile.tree_counts),
        "exit_counts": dict(result.profile.exit_counts),
        "pair_stats": dict(result.profile.pair_stats),
        "dynamic_operations": result.profile.dynamic_operations,
    }


def _assert_engines_agree(program, context=""):
    reference = _execute("interp", program)
    jitted = _execute("jit", program)
    for axis in reference:
        assert jitted[axis] == reference[axis], (
            f"{context}: jit diverges from interp on {axis}")
    return reference


_run_cache = {}


def _reference_run(name):
    """Interp-vs-jit comparison for benchmark *name*, memoised because
    the grid and FU-sweep tests reuse the same baseline runs."""
    if name not in _run_cache:
        _run_cache[name] = _assert_engines_agree(_program(name), name)
    return _run_cache[name]


class TestBenchmarkEquivalence:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_engines_agree(self, name):
        reference = _reference_run(name)
        assert reference["error"] is None
        assert reference["output"], f"{name} printed nothing"


class TestSpdGridEquivalence:
    """jit == interp on the SPEC-transformed views across the knob grid."""

    @pytest.mark.parametrize("name", GRID_BENCHMARKS)
    @pytest.mark.parametrize("knobs", range(len(SPD_GRID)))
    def test_transformed_views_agree(self, name, knobs):
        from repro.sim.profile import ProfileData

        base = _reference_run(name)
        profile = ProfileData(tree_counts=base["tree_counts"],
                              exit_counts=base["exit_counts"],
                              pair_stats=base["pair_stats"],
                              dynamic_operations=base["dynamic_operations"])
        view = disambiguate(_program(name), Disambiguator.SPEC,
                            profile=profile, machine=machine(2, 6),
                            spd_config=SPD_GRID[knobs])
        transformed = _assert_engines_agree(
            view.program, f"{name} SPEC view, knobs[{knobs}]")
        # the transform must preserve observable behaviour too
        assert transformed["output"] == base["output"]
        assert transformed["memory"] == base["memory"]


class TestScheduleEquivalence:
    """Schedule cycles from a jit-collected profile match the
    interp-collected profile at every FU width (1/2/4/8)."""

    @pytest.mark.parametrize("name", GRID_BENCHMARKS)
    def test_fu_sweep_cycles_agree(self, name):
        from repro.sim.profile import ProfileData

        program = _program(name)
        profiles = {}
        for engine in ("interp", "jit"):
            run = _execute(engine, program)
            profiles[engine] = ProfileData(
                tree_counts=run["tree_counts"],
                exit_counts=run["exit_counts"],
                pair_stats=run["pair_stats"],
                dynamic_operations=run["dynamic_operations"])
        views = {
            engine: disambiguate(program, Disambiguator.SPEC,
                                 profile=profiles[engine],
                                 machine=machine(2, 6))
            for engine in profiles
        }
        for num_fus in (1, 2, 4, 8):
            mach = machine(num_fus, 6)
            cycles = {
                engine: evaluate_program(views[engine].program,
                                         views[engine].graphs, mach,
                                         profiles[engine]).cycles
                for engine in profiles
            }
            assert cycles["jit"] == cycles["interp"], (
                f"{name}: cycle divergence at {num_fus} FUs")


class TestCorpusEquivalence:
    """The pinned fuzz reproducers — each once exposed a real oracle
    divergence — must agree under both engines."""

    @pytest.mark.parametrize(
        "case", sorted(CORPUS.glob("*.tc")), ids=lambda p: p.stem)
    def test_corpus_case_agrees(self, case):
        program = compile_source(case.read_text())
        _assert_engines_agree(program, case.stem)
