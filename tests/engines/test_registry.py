"""Tests for the execution-engine protocol and registry."""

import pytest

from repro.engines import (DEFAULT_ENGINE, ExecutionEngine, JitInterpreter,
                           engine_names, get_engine, register_engine,
                           semantic_engine_names)
from repro.engines.base import _ENGINES
from repro.machine.hw import hw_machine
from repro.sim.interpreter import Interpreter, run_program


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert set(engine_names()) >= {"interp", "jit", "hw"}

    def test_default_engine_is_jit_and_semantic(self):
        assert DEFAULT_ENGINE == "jit"
        assert DEFAULT_ENGINE in semantic_engine_names()

    def test_semantic_excludes_hardware(self):
        assert "hw" not in semantic_engine_names()
        assert "interp" in semantic_engine_names()

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown execution engine"):
            get_engine("nonesuch")

    def test_register_replaces_and_restores(self):
        original = get_engine("interp")
        try:
            register_engine(ExecutionEngine(
                "interp", "replacement", Interpreter))
            assert get_engine("interp").description == "replacement"
        finally:
            register_engine(original)
        assert get_engine("interp") is original

    def test_third_party_registration_visible(self):
        engine = ExecutionEngine("_test_engine", "throwaway", Interpreter)
        register_engine(engine)
        try:
            assert "_test_engine" in engine_names()
            assert "_test_engine" in semantic_engine_names()
        finally:
            _ENGINES.pop("_test_engine")


class TestExecutorProtocol:
    def test_interp_executor_builds_interpreter(self, example22_program):
        executor = get_engine("interp").executor(example22_program.copy())
        assert isinstance(executor, Interpreter)
        assert not isinstance(executor, JitInterpreter)

    def test_jit_executor_builds_jit(self, example22_program):
        executor = get_engine("jit").executor(example22_program.copy())
        assert isinstance(executor, JitInterpreter)

    def test_hw_engine_requires_machine(self, example22_program):
        with pytest.raises(ValueError, match="requires a machine"):
            get_engine("hw").executor(example22_program.copy())

    def test_hw_executor_runs(self, example22_program, example22_result):
        executor = get_engine("hw").executor(
            example22_program.copy(), machine=hw_machine(2))
        result = executor.run()
        assert example22_result.output_equal(result)

    def test_run_program_engine_dispatch(self, example22_program,
                                         example22_result):
        for engine in (None, "interp", "jit"):
            result = run_program(example22_program.copy(), engine=engine)
            assert example22_result.output_equal(result)

    def test_run_program_unknown_engine(self, example22_program):
        with pytest.raises(ValueError, match="unknown execution engine"):
            run_program(example22_program.copy(), engine="nonesuch")
