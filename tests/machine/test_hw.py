"""Unit tests for :class:`repro.machine.hw.HwMachine`."""

import pytest

from repro.machine import (HW_ORACLE_INFINITE, PREDICTOR_NAMES, HwMachine,
                           hw_machine, paper_hw_machines)
from repro.machine.latencies import TABLE_6_1_MEM2, TABLE_6_1_MEM6


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_fus(self, bad):
        with pytest.raises(ValueError, match="num_fus"):
            HwMachine(num_fus=bad)

    @pytest.mark.parametrize("bad", [0, -4])
    def test_rejects_nonpositive_window(self, bad):
        with pytest.raises(ValueError, match="window"):
            HwMachine(window=bad)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ValueError, match="replay_penalty"):
            HwMachine(replay_penalty=-1)

    def test_rejects_unknown_predictor(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            HwMachine(predictor="psychic")

    def test_none_means_unbounded(self):
        mach = HwMachine(num_fus=None, window=None)
        assert mach.is_infinite
        assert not HwMachine(num_fus=1).is_infinite


class TestNaming:
    def test_auto_name_encodes_every_knob(self):
        assert HwMachine(num_fus=2, window=8).name == \
            "hw-2fu-w8-mem2-store-set"
        assert HW_ORACLE_INFINITE.name == "hw-inffu-winf-mem2-oracle"

    def test_explicit_name_wins(self):
        assert HwMachine(name="custom").name == "custom"

    def test_with_helpers_regenerate_name(self):
        base = hw_machine(2)
        assert base.with_fus(8).name == "hw-8fu-w32-mem2-store-set"
        assert base.with_predictor("always").name == \
            "hw-2fu-w32-mem2-always"
        # and the originals are untouched (frozen dataclass semantics)
        assert base.num_fus == 2 and base.predictor == "store-set"


class TestConstructors:
    def test_hw_machine_selects_latency_table(self):
        assert hw_machine(4, memory_latency=2).latencies is TABLE_6_1_MEM2
        assert hw_machine(4, memory_latency=6).latencies is TABLE_6_1_MEM6
        assert hw_machine(4, memory_latency=9).memory_latency == 9

    def test_paper_sweep_widths(self):
        sweep = paper_hw_machines()
        assert [m.num_fus for m in sweep] == [1, 2, 4, 8]
        assert all(m.predictor == "store-set" for m in sweep)

    def test_oracle_infinite_is_fully_unbounded(self):
        assert HW_ORACLE_INFINITE.num_fus is None
        assert HW_ORACLE_INFINITE.window is None
        assert HW_ORACLE_INFINITE.predictor == "oracle"

    def test_registry_matches_predictor_module(self):
        from repro.hwsim import make_predictor
        for name in PREDICTOR_NAMES:
            assert make_predictor(name) is not None
