"""Unit tests for the Table 6-1 latency model."""

import pytest

from repro.ir import Opcode, Operation
from repro.machine import LatencyTable, TABLE_6_1_MEM2, TABLE_6_1_MEM6


def op(opcode):
    return Operation(0, opcode)


class TestTable61Values:
    """The published latencies (paper Table 6-1)."""

    @pytest.mark.parametrize("opcode,cycles", [
        (Opcode.MUL, 3),
        (Opcode.DIV, 7), (Opcode.MOD, 7), (Opcode.FDIV, 7),
        (Opcode.FCMP_LT, 1), (Opcode.FCMP_EQ, 1),
        (Opcode.ADD, 1), (Opcode.CMP_EQ, 1), (Opcode.AND, 1),
        (Opcode.SELECT, 1), (Opcode.PRINT, 1),
        (Opcode.FADD, 3), (Opcode.FMUL, 3), (Opcode.FSQRT, 3),
        (Opcode.I2F, 3),
        (Opcode.LOAD, 2), (Opcode.STORE, 2),
    ])
    def test_mem2_latencies(self, opcode, cycles):
        assert TABLE_6_1_MEM2.of(op(opcode)) == cycles

    def test_memory_latency_configurations(self):
        assert TABLE_6_1_MEM2.of(op(Opcode.LOAD)) == 2
        assert TABLE_6_1_MEM6.of(op(Opcode.LOAD)) == 6
        assert TABLE_6_1_MEM6.of(op(Opcode.STORE)) == 6

    def test_branch_latency(self):
        assert TABLE_6_1_MEM2.branch == 2

    def test_non_memory_latencies_shared(self):
        for opcode in (Opcode.MUL, Opcode.DIV, Opcode.FADD, Opcode.ADD):
            assert TABLE_6_1_MEM2.of(op(opcode)) == TABLE_6_1_MEM6.of(op(opcode))


class TestCustomTables:
    def test_custom_memory(self):
        table = LatencyTable(memory=4)
        assert table.of(op(Opcode.LOAD)) == 4

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            LatencyTable(alu=0)
