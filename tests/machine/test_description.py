"""Unit tests for LIFE machine descriptions."""

import pytest

from repro.machine import INFINITE, LifeMachine, machine, paper_machines


class TestConstruction:
    def test_infinite_machine(self):
        assert INFINITE.is_infinite
        assert INFINITE.num_fus is None

    def test_machine_helper(self):
        five = machine(5, 6)
        assert five.num_fus == 5
        assert five.memory_latency == 6
        assert not five.is_infinite

    def test_custom_memory_latency(self):
        assert machine(2, 4).memory_latency == 4

    def test_rejects_zero_fus(self):
        with pytest.raises(ValueError):
            LifeMachine(num_fus=0)

    def test_auto_name(self):
        assert machine(5, 6).name == "life-5fu-mem6"
        assert machine(None, 2).name == "life-inffu-mem2"

    def test_with_fus(self):
        infinite = machine(5, 6).with_fus(None)
        assert infinite.is_infinite
        assert infinite.memory_latency == 6


class TestPaperSweep:
    def test_eight_widths(self):
        sweep = paper_machines(2)
        assert [m.num_fus for m in sweep] == list(range(1, 9))
        assert all(m.memory_latency == 2 for m in sweep)

    def test_sweep_memory_latency(self):
        assert all(m.memory_latency == 6 for m in paper_machines(6))
