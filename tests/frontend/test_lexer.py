"""Unit tests for the tinyc lexer."""

import pytest

from repro.frontend import CompileError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind == "eof"

    def test_identifiers_and_keywords(self):
        assert kinds("int x foo_bar") == ["kw", "ident", "ident"]

    def test_underscore_identifier(self):
        assert kinds("_x x_1") == ["ident", "ident"]

    def test_symbols(self):
        assert texts("a <= b == c && d") == ["a", "<=", "b", "==", "c", "&&", "d"]

    def test_two_char_symbols_win(self):
        assert texts("a<=b") == ["a", "<=", "b"]
        assert texts("a < = b") == ["a", "<", "=", "b"]


class TestNumbers:
    def test_int_literal(self):
        token = tokenize("42")[0]
        assert token.kind == "int" and token.value == 42

    def test_float_literal(self):
        token = tokenize("3.25")[0]
        assert token.kind == "float" and token.value == 3.25

    def test_float_exponent(self):
        token = tokenize("1.5e3")[0]
        assert token.kind == "float" and token.value == 1500.0

    def test_exponent_with_sign(self):
        token = tokenize("2e-2")[0]
        assert token.kind == "float" and token.value == 0.02

    def test_malformed_number(self):
        with pytest.raises(CompileError):
            tokenize("1.2.3")

    def test_malformed_exponent(self):
        with pytest.raises(CompileError):
            tokenize("1e+")


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert kinds("a // comment\n b") == ["ident", "ident"]

    def test_block_comment(self):
        assert kinds("a /* x\n y */ b") == ["ident", "ident"]

    def test_unterminated_block_comment(self):
        with pytest.raises(CompileError):
            tokenize("a /* never closed")

    def test_line_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2 and tokens[1].column == 3

    def test_line_tracking_after_block_comment(self):
        tokens = tokenize("/* a\nb */ x")
        assert tokens[0].line == 2


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(CompileError, match="unexpected character"):
            tokenize("a @ b")
