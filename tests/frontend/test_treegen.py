"""Structural tests of decision-tree generation (if-conversion)."""

from repro.frontend import compile_source
from repro.ir import ExitKind, Opcode


def trees_of(program, func="main"):
    return {t.name: t for f, t in program.all_trees() if f == func}


class TestTreeShapes:
    def test_if_else_folds_into_one_tree(self):
        """Paper Figure 4-1: BB1/BB2/BB3 become a single decision tree."""
        program = compile_source("""
            int a[4];
            int main() {
                int x = 3; int y;
                if (x > 1) { y = 1; a[0] = 1; } else { y = 2; a[1] = 2; }
                print(y);
                return 0;
            }
        """)
        trees = trees_of(program)
        # one entry tree (with both arms guarded inside) plus the join tree
        entry = trees[[n for n in trees if "entry" in n][0]]
        stores = [op for op in entry.ops if op.is_store]
        assert len(stores) == 2
        assert all(op.guard is not None for op in stores)
        # the two stores carry opposite-polarity guards on the same register
        g0, g1 = (op.guard for op in stores)
        assert g0.reg == g1.reg and g0.negate != g1.negate

    def test_loop_body_is_one_tree(self):
        program = compile_source("""
            int a[100];
            int main() {
                int i;
                for (i = 0; i < 10; i = i + 1) { a[i] = i; }
                return 0;
            }
        """)
        trees = trees_of(program)
        loop = next(t for name, t in trees.items() if "for" in name)
        # the back edge is a self-GOTO
        self_gotos = [e for e in loop.exits
                      if e.kind is ExitKind.GOTO and e.target == loop.name]
        assert len(self_gotos) == 1
        # the body's store lives inside the header tree, guarded by the
        # loop condition
        store = next(op for op in loop.ops if op.is_store)
        assert store.guard is not None

    def test_call_splits_trees(self):
        program = compile_source("""
            int f(int x) { return x + 1; }
            int main() { print(f(1)); return 0; }
        """)
        trees = trees_of(program)
        call_exits = [e for t in trees.values() for e in t.exits
                      if e.kind is ExitKind.CALL]
        assert len(call_exits) == 1
        exit_ = call_exits[0]
        assert exit_.callee == "f"
        assert exit_.target in trees  # continuation tree exists

    def test_speculation_leaves_pure_ops_unguarded(self):
        """Figure 4-2: side-effect-free operations are executed
        speculatively, above the compare."""
        program = compile_source("""
            float a[4];
            int main() {
                float y;
                if (a[0] > 0.5) { y = a[1] * 2.0; } else { y = a[2] + 1.0; }
                print(y);
                return 0;
            }
        """)
        entry = next(t for name, t in trees_of(program).items()
                     if "entry" in name)
        # loads and arithmetic from both arms: unguarded (speculated)
        loads = [op for op in entry.ops if op.is_load]
        assert len(loads) == 3
        assert all(op.guard is None for op in loads)
        muls = [op for op in entry.ops
                if op.opcode in (Opcode.FMUL, Opcode.FADD)]
        assert all(op.guard is None for op in muls)
        # the two writes of y: guarded, opposite polarity
        writes = [op for op in entry.ops
                  if op.dest is not None and op.dest.name.startswith("v.y")]
        assert len(writes) == 2
        assert all(op.guard is not None for op in writes)

    def test_divisions_are_guarded_not_speculated(self):
        program = compile_source("""
            int main() {
                int x = 4; int d = 0; int y = 9;
                if (x > 0) { d = y / x; }
                print(d);
                return 0;
            }
        """)
        entry = next(t for name, t in trees_of(program).items()
                     if "entry" in name)
        div = next(op for op in entry.ops if op.opcode is Opcode.DIV)
        assert div.guard is not None

    def test_last_exit_unconditional(self, example22_program):
        for _f, tree in example22_program.all_trees():
            assert tree.exits[-1].guard is None

    def test_exit_paths_carry_distinct_literals(self):
        program = compile_source("""
            int main() {
                int x = 1;
                if (x > 0) { print(1); } else { print(2); }
                return 0;
            }
        """)
        entry = next(t for name, t in trees_of(program).items()
                     if "entry" in name)
        paths = entry.exit_paths()
        assert len(set(paths)) == len(paths)


class TestNestedControl:
    def test_nested_if_guard_conjunction(self):
        program = compile_source("""
            int a[4];
            int main() {
                int x = 3;
                if (x > 0) {
                    if (x > 2) { a[0] = 1; }
                }
                return 0;
            }
        """)
        entry = next(t for name, t in trees_of(program).items()
                     if "entry" in name)
        store = next(op for op in entry.ops if op.is_store)
        assert store.guard is not None
        # the conjunction was materialised with an AND-family op
        and_ops = [op for op in entry.ops
                   if op.opcode in (Opcode.AND, Opcode.ANDN, Opcode.OR)]
        assert and_ops
        # both branch literals recorded on the store's path
        assert len(store.path_literals) == 2

    def test_loops_inside_loops_make_separate_trees(self):
        program = compile_source("""
            int a[100];
            int main() {
                int i; int j;
                for (i = 0; i < 5; i = i + 1) {
                    for (j = 0; j < 5; j = j + 1) { a[5*i+j] = i + j; }
                }
                return 0;
            }
        """)
        names = set(trees_of(program))
        for_trees = [n for n in names if "for" in n]
        assert len(for_trees) == 2
