"""Unit tests for the tinyc parser."""

import pytest

from repro.frontend import CompileError, parse
from repro.frontend import ast_nodes as ast


def parse_stmts(body):
    unit = parse("int main() { %s }" % body)
    return unit.functions[0].body


def parse_expr(text):
    stmt = parse_stmts(f"x = {text};")[0]
    return stmt.value


class TestDeclarations:
    def test_global_array(self):
        unit = parse("float a[10];")
        decl = unit.globals_[0]
        assert decl.name == "a" and decl.type == "float" and decl.dims == (10,)

    def test_global_2d(self):
        assert parse("int g[4][8];").globals_[0].dims == (4, 8)

    def test_global_scalar_rejected(self):
        with pytest.raises(CompileError, match="must be arrays"):
            parse("int x;")

    def test_three_dims_rejected(self):
        with pytest.raises(CompileError, match="2 array dimensions"):
            parse("int a[2][2][2];")

    def test_function_signature(self):
        unit = parse("float f(int n, float a[], float g[][8]) { return 0.0; }")
        func = unit.functions[0]
        assert func.return_type == "float"
        assert [p.name for p in func.params] == ["n", "a", "g"]
        assert [p.is_array for p in func.params] == [False, True, True]
        assert func.params[2].dims == (8,)

    def test_void_function(self):
        assert parse("void f() {}").functions[0].return_type is None


class TestStatements:
    def test_local_decl_with_init(self):
        stmt = parse_stmts("int x = 3;")[0]
        assert isinstance(stmt, ast.DeclStmt)
        assert isinstance(stmt.init, ast.IntLit)

    def test_local_array_decl(self):
        stmt = parse_stmts("float buf[16];")[0]
        assert isinstance(stmt, ast.ArrayDeclStmt) and stmt.dims == (16,)

    def test_scalar_assign(self):
        stmt = parse_stmts("x = 1;")[0]
        assert isinstance(stmt, ast.Assign) and stmt.name == "x"

    def test_indexed_assign(self):
        stmt = parse_stmts("a[i+1] = 2;")[0]
        assert isinstance(stmt, ast.IndexAssign)
        assert isinstance(stmt.indices[0], ast.Binary)

    def test_2d_assign(self):
        stmt = parse_stmts("g[i][j] = 2;")[0]
        assert len(stmt.indices) == 2

    def test_if_else(self):
        stmt = parse_stmts("if (x < 1) { y = 1; } else { y = 2; }")[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_braces(self):
        stmt = parse_stmts("if (x) y = 1;")[0]
        assert isinstance(stmt.then_body[0], ast.Assign)

    def test_else_if_chain(self):
        stmt = parse_stmts("if (a) x = 1; else if (b) x = 2; else x = 3;")[0]
        assert isinstance(stmt.else_body[0], ast.If)

    def test_while(self):
        stmt = parse_stmts("while (i < 10) { i = i + 1; }")[0]
        assert isinstance(stmt, ast.While)

    def test_for(self):
        stmt = parse_stmts("for (i = 0; i < 10; i = i + 1) { x = i; }")[0]
        assert isinstance(stmt, ast.For)
        assert isinstance(stmt.init, ast.Assign)
        assert isinstance(stmt.step, ast.Assign)

    def test_for_with_decl_init(self):
        stmt = parse_stmts("for (int i = 0; i < 10; i = i + 1) {}")[0]
        assert isinstance(stmt.init, ast.DeclStmt)

    def test_for_empty_clauses(self):
        stmt = parse_stmts("for (;;) {}")[0]
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_return_value(self):
        stmt = parse_stmts("return x + 1;")[0]
        assert isinstance(stmt, ast.Return) and stmt.value is not None

    def test_print(self):
        stmt = parse_stmts("print(x);")[0]
        assert isinstance(stmt, ast.Print)

    def test_expression_statement(self):
        stmt = parse_stmts("f(1, 2);")[0]
        assert isinstance(stmt, ast.ExprStmt)
        assert isinstance(stmt.expr, ast.Call)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+" and expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse_expr("1 - 2 - 3")
        assert expr.op == "-" and expr.left.op == "-"

    def test_parentheses(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*" and expr.left.op == "+"

    def test_comparison_below_logic(self):
        expr = parse_expr("a < b && c > d")
        assert expr.op == "&&"
        assert expr.left.op == "<" and expr.right.op == ">"

    def test_or_below_and(self):
        expr = parse_expr("a && b || c")
        assert expr.op == "||" and expr.left.op == "&&"

    def test_unary_minus(self):
        expr = parse_expr("-x * 2")
        assert expr.op == "*" and isinstance(expr.left, ast.Unary)

    def test_not(self):
        expr = parse_expr("!x")
        assert isinstance(expr, ast.Unary) and expr.op == "!"

    def test_call_with_args(self):
        expr = parse_expr("f(1, g(2), a)")
        assert isinstance(expr, ast.Call) and len(expr.args) == 3
        assert isinstance(expr.args[1], ast.Call)

    def test_index_expression(self):
        expr = parse_expr("a[i][j]")
        assert isinstance(expr, ast.Index) and len(expr.indices) == 2

    def test_float_literal(self):
        assert isinstance(parse_expr("1.5"), ast.FloatLit)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(CompileError):
            parse("int main() { x = 1 }")

    def test_missing_paren(self):
        with pytest.raises(CompileError):
            parse("int main() { if (x { } }")

    def test_stray_token_at_top_level(self):
        with pytest.raises(CompileError, match="expected a declaration"):
            parse("42;")
