"""Behavioural tests of the whole frontend: compile then execute.

Each test compiles a small tinyc program and checks its printed output
under the reference interpreter — the same validation loop the paper's
platform uses ("the program output ... is used to validate the
correctness of the decision trees").
"""

import pytest

from repro.frontend import CompileError, compile_source
from repro.sim import run_program


def outputs(source):
    return run_program(compile_source(source)).output


class TestArithmetic:
    def test_integer_arithmetic(self):
        assert outputs("""
            int main() {
                print(7 + 3 * 2);
                print((7 + 3) * 2);
                print(7 % 3);
                print(-7 / 2);
                print(-7 % 2);
                return 0;
            }
        """) == [13, 20, 1, -3, -1]  # C truncation semantics

    def test_float_arithmetic(self):
        out = outputs("""
            int main() {
                print(1.5 * 2.0 + 0.25);
                print(7.0 / 2.0);
                return 0;
            }
        """)
        assert out == [3.25, 3.5]

    def test_mixed_promotion(self):
        assert outputs("int main() { print(3 / 2); print(3 / 2.0); return 0; }") \
            == [1, 1.5]

    def test_intrinsics(self):
        out = outputs("""
            int main() {
                print(sqrt(16.0));
                print(fabs(-2.5));
                print(sin(0.0));
                print(cos(0.0));
                return 0;
            }
        """)
        assert out == [4.0, 2.5, 0.0, 1.0]

    def test_comparisons_yield_ints(self):
        assert outputs("int main() { print(3 < 5); print(5 < 3); return 0; }") \
            == [1, 0]

    def test_logical_operators(self):
        assert outputs("""
            int main() {
                print(1 && 0);
                print(1 || 0);
                print(!3);
                print(!0);
                return 0;
            }
        """) == [0, 1, 0, 1]

    def test_unary_minus_variable(self):
        assert outputs("int main() { int x = 5; print(-x); return 0; }") == [-5]


class TestControlFlow:
    def test_if_else(self):
        assert outputs("""
            int main() {
                int x = 3;
                if (x > 2) { print(1); } else { print(2); }
                if (x > 5) { print(3); } else { print(4); }
                return 0;
            }
        """) == [1, 4]

    def test_nested_if(self):
        assert outputs("""
            int main() {
                int x = 7;
                if (x > 0) {
                    if (x > 10) { print(1); } else { print(2); }
                }
                return 0;
            }
        """) == [2]

    def test_while_loop(self):
        assert outputs("""
            int main() {
                int i = 0; int s = 0;
                while (i < 5) { s = s + i; i = i + 1; }
                print(s);
                return 0;
            }
        """) == [10]

    def test_for_loop(self):
        assert outputs("""
            int main() {
                int i; int s = 0;
                for (i = 1; i <= 10; i = i + 1) { s = s + i; }
                print(s);
                return 0;
            }
        """) == [55]

    def test_downward_for(self):
        assert outputs("""
            int main() {
                int i; int s = 0;
                for (i = 5; i >= 1; i = i - 1) { s = s * 10 + i; }
                print(s);
                return 0;
            }
        """) == [54321]

    def test_zero_trip_loop(self):
        assert outputs("""
            int main() {
                int i;
                for (i = 0; i < 0; i = i + 1) { print(99); }
                print(1);
                return 0;
            }
        """) == [1]

    def test_constant_condition_folded(self):
        assert outputs("""
            int main() {
                if (1) { print(1); } else { print(2); }
                if (0) { print(3); }
                print(4);
                return 0;
            }
        """) == [1, 4]

    def test_early_return(self):
        assert outputs("""
            int f(int x) {
                if (x > 0) { return 1; }
                return 2;
            }
            int main() { print(f(5)); print(f(-5)); return 0; }
        """) == [1, 2]

    def test_statements_after_return_are_dead(self):
        assert outputs("""
            int main() {
                print(1);
                return 0;
                print(2);
            }
        """) == [1]


class TestArrays:
    def test_global_array_roundtrip(self):
        assert outputs("""
            int a[10];
            int main() {
                int i;
                for (i = 0; i < 10; i = i + 1) { a[i] = i * i; }
                print(a[7]);
                return 0;
            }
        """) == [49]

    def test_2d_array(self):
        assert outputs("""
            int g[3][4];
            int main() {
                int i; int j;
                for (i = 0; i < 3; i = i + 1) {
                    for (j = 0; j < 4; j = j + 1) { g[i][j] = 10 * i + j; }
                }
                print(g[2][3]);
                print(g[0][1]);
                return 0;
            }
        """) == [23, 1]

    def test_local_array(self):
        assert outputs("""
            int main() {
                float buf[4];
                buf[2] = 1.5;
                print(buf[2]);
                return 0;
            }
        """) == [1.5]

    def test_memory_zero_initialised(self):
        assert outputs("int a[4]; int main() { print(a[3]); return 0; }") == [0]

    def test_index_expression(self):
        assert outputs("""
            int a[10];
            int main() {
                int i = 2;
                a[2 * i + 1] = 42;
                print(a[5]);
                return 0;
            }
        """) == [42]

    def test_indirect_index(self):
        """Address read out of another memory location (paper Sec. 2.1)."""
        assert outputs("""
            int ind[4];
            int data[10];
            int main() {
                ind[0] = 7;
                data[7] = 11;
                print(data[ind[0]]);
                return 0;
            }
        """) == [11]


class TestFunctions:
    def test_scalar_args_by_value(self):
        assert outputs("""
            void f(int x) { x = x + 1; }
            int main() { int y = 5; f(y); print(y); return 0; }
        """) == [5]

    def test_array_args_by_reference(self):
        assert outputs("""
            int a[4];
            void f(int b[]) { b[1] = 99; }
            int main() { f(a); print(a[1]); return 0; }
        """) == [99]

    def test_2d_array_parameter(self):
        assert outputs("""
            int g[3][4];
            void f(int m[][4]) { m[1][2] = 7; }
            int main() { f(g); print(g[1][2]); return 0; }
        """) == [7]

    def test_recursion(self):
        assert outputs("""
            int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { print(fib(10)); return 0; }
        """) == [55]

    def test_nested_calls_in_expression(self):
        assert outputs("""
            int inc(int x) { return x + 1; }
            int main() { print(inc(inc(inc(0)))); return 0; }
        """) == [3]

    def test_call_in_condition(self):
        assert outputs("""
            int f(int x) { return x * 2; }
            int main() {
                int i = 0;
                while (f(i) < 6) { i = i + 1; }
                print(i);
                return 0;
            }
        """) == [3]

    def test_two_calls_in_one_expression(self):
        assert outputs("""
            int one() { return 1; }
            int two() { return 2; }
            int main() { print(one() + two() * 10); return 0; }
        """) == [21]

    def test_void_call_statement(self):
        assert outputs("""
            int a[1];
            void bump() { a[0] = a[0] + 1; }
            int main() { bump(); bump(); print(a[0]); return 0; }
        """) == [2]

    def test_float_return_conversion(self):
        assert outputs("""
            float half(int x) { return x / 2.0; }
            int main() { print(half(5)); return 0; }
        """) == [2.5]


class TestScoping:
    def test_shadowing(self):
        assert outputs("""
            int main() {
                int x = 1;
                { int x = 2; print(x); }
                print(x);
                return 0;
            }
        """) == [2, 1]

    def test_for_scope(self):
        assert outputs("""
            int main() {
                int i = 100;
                for (int i = 0; i < 3; i = i + 1) { print(i); }
                print(i);
                return 0;
            }
        """) == [0, 1, 2, 100]


class TestErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(CompileError, match="undeclared"):
            compile_source("int main() { x = 1; return 0; }")

    def test_call_undeclared_function(self):
        with pytest.raises(CompileError, match="undeclared function"):
            compile_source("int main() { return f(); }")

    def test_wrong_arg_count(self):
        with pytest.raises(CompileError, match="expects"):
            compile_source("int f(int x) { return x; } "
                           "int main() { return f(); }")

    def test_scalar_passed_for_array(self):
        with pytest.raises(CompileError, match="array expected"):
            compile_source("void f(int a[]) {} "
                           "int main() { int x = 0; f(x); return 0; }")

    def test_assign_to_array_name(self):
        with pytest.raises(CompileError, match="cannot assign to array"):
            compile_source("int a[4]; int main() { a = 1; return 0; }")

    def test_index_scalar(self):
        with pytest.raises(CompileError, match="not an array"):
            compile_source("int main() { int x = 0; x[0] = 1; return 0; }")

    def test_subscript_count_mismatch(self):
        with pytest.raises(CompileError, match="subscripts"):
            compile_source("int g[3][4]; int main() { g[1] = 1; return 0; }")

    def test_main_with_params_rejected(self):
        with pytest.raises(CompileError, match="main"):
            compile_source("int main(int x) { return x; }")

    def test_float_modulo_rejected(self):
        with pytest.raises(CompileError, match="float modulo"):
            compile_source("int main() { print(1.5 % 2.0); return 0; }")
