"""Structural tests of lowering: affine capture, regions, bounds."""

from repro.frontend import compile_source
from repro.ir import RegionKind


def find_mem_ops(program, func="main"):
    out = []
    for f, tree in program.all_trees():
        if f != func:
            continue
        for op in tree.ops:
            if op.is_memory:
                out.append(op)
    return out


class TestAffineCapture:
    def test_linear_subscript(self):
        program = compile_source("""
            int a[100];
            int main() {
                int i;
                for (i = 0; i < 10; i = i + 1) { a[2*i + 3] = i; }
                return 0;
            }
        """)
        store = next(op for op in find_mem_ops(program) if op.is_store)
        sub = store.access.subscript
        assert sub is not None
        assert sub.const == 3
        assert list(sub.coeffs.values()) == [2]

    def test_nonlinear_subscript_not_affine(self):
        program = compile_source("""
            int a[100];
            int main() {
                int i = 3;
                a[i * i] = 1;
                return 0;
            }
        """)
        store = next(op for op in find_mem_ops(program) if op.is_store)
        assert store.access.subscript is None

    def test_indirect_subscript_not_affine(self):
        program = compile_source("""
            int ind[4]; int a[100];
            int main() {
                a[ind[0]] = 1;
                return 0;
            }
        """)
        store = next(op for op in find_mem_ops(program)
                     if op.is_store and op.access.region.name == "a")
        assert store.access.subscript is None

    def test_2d_subscript_linearised(self):
        program = compile_source("""
            int g[4][8];
            int main() {
                int i; int j;
                for (i = 0; i < 4; i = i + 1) {
                    for (j = 0; j < 8; j = j + 1) { g[i][j] = 0; }
                }
                return 0;
            }
        """)
        store = next(op for op in find_mem_ops(program) if op.is_store)
        coeffs = sorted(store.access.subscript.coeffs.values())
        assert coeffs == [1, 8]  # row stride times i plus j


class TestLoopBounds:
    def source(self, header):
        return ("int a[100]; int main() { int i; "
                f"for ({header}) {{ a[i] = 1; }} return 0; }}")

    def bounds_of(self, header):
        program = compile_source(self.source(header))
        store = next(op for op in find_mem_ops(program) if op.is_store)
        (bounds,) = store.access.bounds.values()
        return bounds

    def test_half_open_upward(self):
        assert self.bounds_of("i = 0; i < 10; i = i + 1") == (0, 9)

    def test_closed_upward(self):
        assert self.bounds_of("i = 1; i <= 10; i = i + 1") == (1, 10)

    def test_downward(self):
        assert self.bounds_of("i = 9; i >= 2; i = i - 1") == (2, 9)

    def test_non_constant_limit_unbounded(self):
        program = compile_source("""
            int a[100];
            int main() {
                int i; int n = 10;
                for (i = 0; i < n; i = i + 1) { a[i] = 1; }
                return 0;
            }
        """)
        store = next(op for op in find_mem_ops(program) if op.is_store)
        assert all(b == (None, None) for b in store.access.bounds.values())

    def test_body_reassigning_var_kills_bounds(self):
        program = compile_source("""
            int a[100];
            int main() {
                int i;
                for (i = 0; i < 10; i = i + 1) { a[i] = 1; i = i + 1; }
                return 0;
            }
        """)
        store = next(op for op in find_mem_ops(program) if op.is_store)
        assert all(b == (None, None) for b in store.access.bounds.values())


class TestRegions:
    def compile_kernel(self):
        return compile_source("""
            int a[16];
            void f(int p[]) {
                int buf[8];
                p[0] = a[1] + buf[2];
            }
            int main() { f(a); return 0; }
        """)

    def test_region_kinds(self):
        program = self.compile_kernel()
        kinds = {}
        for op in find_mem_ops(program, func="f"):
            kinds[op.access.region.name] = op.access.region.kind
        assert kinds["f.p"] == RegionKind.PARAM
        assert kinds["a"] == RegionKind.GLOBAL
        assert kinds["f.buf"] == RegionKind.LOCAL

    def test_local_array_has_layout_slot(self):
        program = self.compile_kernel()
        assert "f.buf" in program.layout
        assert program.layout["f.buf"] != program.layout["a"]


class TestAddressCode:
    def test_constant_subscript_folds_to_constant_address(self):
        program = compile_source(
            "int a[16]; int main() { a[3] = 1; return 0; }")
        store = next(op for op in find_mem_ops(program) if op.is_store)
        from repro.ir import Constant
        base = program.layout["a"]
        assert store.address == Constant(base + 3)

    def test_scalars_never_touch_memory(self):
        program = compile_source("""
            int main() {
                int x = 1; int y = 2;
                print(x + y);
                return 0;
            }
        """)
        assert not find_mem_ops(program)
