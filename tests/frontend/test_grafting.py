"""Unit and behavioural tests for grafting (tree enlargement).

Paper Section 7: enlarging trees through code replication (grafting)
should expose more SpD opportunities.  The non-negotiable property is
semantic preservation; structure tests check trees actually grow and
the bounds hold.
"""

import pytest

from repro.frontend import GraftConfig, compile_source, graft_program
from repro.ir import ExitKind, validate_program
from repro.sim import run_program


IF_CHAIN = """
int a[8];
int main() {
    int x = 3;
    if (x > 1) { a[0] = 1; } else { a[1] = 2; }
    a[2] = 3;
    if (x > 2) { a[3] = 4; }
    print(a[0]); print(a[1]); print(a[2]); print(a[3]);
    return 0;
}
"""

LOOP_WITH_TAIL = """
int a[16];
int main() {
    int i; int s = 0;
    for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }
    s = a[3] + a[5];
    print(s);
    return 0;
}
"""


def graft_source(source, config=GraftConfig()):
    program = compile_source(source)
    reference = run_program(program.copy(), collect_profile=False)
    grafted, stats = graft_program(program, config)
    validate_program(grafted)
    result = run_program(grafted.copy(), collect_profile=False)
    assert reference.output_equal(result)
    return program, grafted, stats


class TestSemantics:
    def test_if_chain(self):
        graft_source(IF_CHAIN)

    def test_loop_with_tail(self):
        graft_source(LOOP_WITH_TAIL)

    @pytest.mark.parametrize("name", ["fft", "quick", "queen", "perm",
                                      "tree", "espresso"])
    def test_benchmarks_preserved(self, name):
        from repro.bench import get_benchmark
        graft_source(get_benchmark(name).source)


class TestStructure:
    def test_join_trees_merged(self):
        """The if-else join trees get inlined: fewer, larger trees."""
        program, grafted, stats = graft_source(IF_CHAIN)
        assert stats.grafts >= 1
        assert len(list(grafted.all_trees())) <= len(list(program.all_trees()))

    def test_input_not_mutated(self):
        program = compile_source(IF_CHAIN)
        size = program.size()
        graft_program(program)
        assert program.size() == size

    def test_loop_back_edges_survive(self):
        _program, grafted, _stats = graft_source(LOOP_WITH_TAIL)
        self_loops = [
            (tree.name, e) for _f, tree in grafted.all_trees()
            for e in tree.exits
            if e.kind is ExitKind.GOTO and e.target == tree.name]
        assert self_loops, "the for-loop back edge must remain"

    def test_growth_bounded(self):
        config = GraftConfig(max_growth=1.5)
        program = compile_source(IF_CHAIN)
        base_sizes = {t.name: t.size() for _f, t in program.all_trees()}
        grafted, _stats = graft_program(program, config)
        for _f, tree in grafted.all_trees():
            base = base_sizes.get(tree.name)
            if base:
                # one graft may overshoot slightly; the *next* is refused
                assert tree.size() <= base * 1.5 + GraftConfig().max_target_size

    def test_unreachable_trees_pruned(self):
        _program, grafted, stats = graft_source(IF_CHAIN)
        # every remaining tree is reachable from its function entry
        for function in grafted.functions.values():
            reachable = {function.entry}
            stack = [function.entry]
            while stack:
                tree = function.trees[stack.pop()]
                for exit_ in tree.exits:
                    if exit_.target and exit_.target not in reachable:
                        reachable.add(exit_.target)
                        stack.append(exit_.target)
            assert set(function.trees) == reachable

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GraftConfig(max_target_size=0)
        with pytest.raises(ValueError):
            GraftConfig(max_growth=0.5)


class TestSpDInteraction:
    def test_grafting_never_hurts_spec(self):
        """The Section 7 hypothesis, as an invariant: with grafted trees
        SPEC-over-STATIC is at least as good (modulo 1-cycle scheduler
        noise) as without, on a wide machine."""
        from repro.bench import BenchmarkRunner
        from repro.machine import machine
        mach = machine(8, 6)
        base = BenchmarkRunner()
        grafted = BenchmarkRunner(graft=GraftConfig())
        for name in ("perm", "quick", "queen"):
            assert (grafted.spec_over_static(name, mach)
                    >= base.spec_over_static(name, mach) - 0.02), name
