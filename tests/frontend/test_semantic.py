"""Unit tests for semantic analysis."""

import pytest

from repro.frontend import CompileError, analyze, parse


def analyze_source(source):
    return analyze(parse(source))


class TestSignatures:
    def test_signatures_collected(self):
        env = analyze_source("""
            int f(int x) { return x; }
            int main() { return f(1); }
        """)
        assert set(env.signatures) == {"f", "main"}
        assert env.signatures["f"].return_type == "int"

    def test_duplicate_function(self):
        with pytest.raises(CompileError, match="duplicate function"):
            analyze_source("int f() { return 0; } int f() { return 0; } "
                           "int main() { return 0; }")

    def test_duplicate_global(self):
        with pytest.raises(CompileError, match="duplicate global"):
            analyze_source("int a[2]; int a[3]; int main() { return 0; }")

    def test_duplicate_parameter(self):
        with pytest.raises(CompileError, match="duplicate parameter"):
            analyze_source("int f(int x, int x) { return 0; } "
                           "int main() { return 0; }")

    def test_intrinsic_shadowing_rejected(self):
        with pytest.raises(CompileError, match="shadows an intrinsic"):
            analyze_source("float sqrt(float x) { return x; } "
                           "int main() { return 0; }")

    def test_main_required(self):
        with pytest.raises(CompileError, match="no main"):
            analyze_source("int f() { return 0; }")


class TestLocalArrays:
    def test_collected_including_nested(self):
        env = analyze_source("""
            int main() {
                int a[4];
                if (1) { float b[8]; }
                return 0;
            }
        """)
        assert set(env.local_arrays["main"]) == {"a", "b"}
        assert env.local_arrays["main"]["b"] == ("float", (8,))

    def test_duplicate_local_array(self):
        with pytest.raises(CompileError, match="duplicate local array"):
            analyze_source("int main() { int a[4]; int a[8]; return 0; }")


class TestRecursion:
    def test_direct_recursion_detected(self):
        env = analyze_source("""
            int f(int n) { if (n > 0) { return f(n - 1); } return 0; }
            int main() { return f(3); }
        """)
        assert "f" in env.recursive
        assert "main" not in env.recursive

    def test_mutual_recursion_detected(self):
        env = analyze_source("""
            int g(int n);
            int f(int n) { return g(n); }
            int g(int n) { if (n > 0) { return f(n - 1); } return 0; }
            int main() { return f(3); }
        """.replace("int g(int n);", ""))  # no prototypes in tinyc
        assert env.recursive >= {"f", "g"}

    def test_recursive_function_with_local_array_rejected(self):
        with pytest.raises(CompileError, match="recursive"):
            analyze_source("""
                int f(int n) {
                    int buf[4];
                    if (n > 0) { return f(n - 1); }
                    return 0;
                }
                int main() { return f(2); }
            """)

    def test_intrinsic_calls_not_recursion(self):
        env = analyze_source("""
            float f(float x) { return sqrt(x); }
            int main() { print(f(4.0)); return 0; }
        """)
        assert not env.recursive
