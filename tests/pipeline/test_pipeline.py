"""End-to-end cache correctness for :class:`repro.pipeline.core.Pipeline`.

Disk round-trips must reproduce the in-memory result exactly, damaged
cache entries must be rebuilt transparently, and the parallel executor
must be indistinguishable from the serial path.
"""

import pytest

from repro import obs
from repro.bench.runner import BenchmarkRunner
from repro.disambig.pipeline import Disambiguator
from repro.experiments import figure6_2
from repro.machine.description import machine
from repro.pipeline.core import Pipeline
from repro.pipeline.executor import TimingJob, ViewJob, run_jobs
from repro.pipeline.store import ArtifactStore

SOURCE = """
float a[300];
float y[300];

int main() {
    int i;
    for (i = 1; i <= 100; i = i + 1) {
        a[2*i] = i * 1.0;
        y[i] = a[i+4] * 2.0 + 1.0;
    }
    print(y[3]);
    print(y[50]);
    return 0;
}
"""


class TestCachedStages:
    def test_disk_round_trip_equals_in_memory(self, tmp_path):
        mach = machine(5, 2)
        cold = Pipeline(store=ArtifactStore(tmp_path))
        first = cold.timing("ex", SOURCE, Disambiguator.SPEC, mach)
        # a fresh pipeline on the same disk store must not recompute
        warm = Pipeline(store=ArtifactStore(tmp_path))
        with obs.tracing() as tracer:
            second = warm.timing("ex", SOURCE, Disambiguator.SPEC, mach)
        counters = tracer.metrics.counters
        assert counters.get("pipeline.cache_hits.disk", 0) == 1
        assert counters.get("pipeline.cache_misses", 0) == 0
        assert second.fingerprint == first.fingerprint
        assert second.cycles == first.cycles
        assert (set(second.timing.tree_reports)
                == set(first.timing.tree_reports))

    def test_view_round_trip(self, tmp_path):
        cold = Pipeline(store=ArtifactStore(tmp_path))
        first = cold.view("ex", SOURCE, Disambiguator.SPEC, 2)
        warm = Pipeline(store=ArtifactStore(tmp_path))
        second = warm.view("ex", SOURCE, Disambiguator.SPEC, 2)
        assert second.code_size() == first.code_size()
        assert second.spd_counts() == first.spd_counts()

    def test_corrupt_entry_is_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        pipe = Pipeline(store=store)
        baseline = pipe.compiled("ex", SOURCE)
        path = store._path("compiled", baseline.fingerprint)
        path.write_bytes(b"truncated")
        rebuilt = Pipeline(store=ArtifactStore(tmp_path)).compiled("ex", SOURCE)
        assert rebuilt.program.size() == baseline.program.size()
        # the rebuild overwrote the damaged file with a loadable entry
        assert ArtifactStore(tmp_path).get(
            "compiled", baseline.fingerprint) is not None

    def test_memory_only_pipeline_recomputes_per_instance(self):
        a = Pipeline(store=ArtifactStore(root=None))
        b = Pipeline(store=ArtifactStore(root=None))
        assert (a.compiled("ex", SOURCE).fingerprint
                == b.compiled("ex", SOURCE).fingerprint)


class TestExecutor:
    def test_serial_jobs_in_order(self, tmp_path):
        pipe = Pipeline(store=ArtifactStore(tmp_path))
        jobs = [ViewJob("ex", SOURCE, Disambiguator.STATIC),
                TimingJob("ex", SOURCE, Disambiguator.NAIVE, machine(5, 2))]
        results = run_jobs(pipe, jobs, num_jobs=1)
        assert results[0].kind == Disambiguator.STATIC
        assert results[1].kind == Disambiguator.NAIVE

    @pytest.mark.slow
    def test_parallel_matches_serial(self, tmp_path):
        mach = machine(5, 2)
        jobs = [TimingJob("ex", SOURCE, kind, mach) for kind in Disambiguator]
        serial = run_jobs(Pipeline(store=ArtifactStore(tmp_path / "serial")),
                          jobs, num_jobs=1)
        parallel = run_jobs(
            Pipeline(store=ArtifactStore(tmp_path / "parallel")),
            jobs, num_jobs=4)
        assert [a.fingerprint for a in parallel] == \
            [a.fingerprint for a in serial]
        assert [a.cycles for a in parallel] == [a.cycles for a in serial]

    @pytest.mark.slow
    def test_parallel_lands_results_in_parent_store(self, tmp_path):
        pipe = Pipeline(store=ArtifactStore(tmp_path))
        mach = machine(5, 2)
        jobs = [TimingJob("ex", SOURCE, kind, mach)
                for kind in (Disambiguator.NAIVE, Disambiguator.STATIC)]
        run_jobs(pipe, jobs, num_jobs=2)
        with obs.tracing() as tracer:
            pipe.timing("ex", SOURCE, Disambiguator.NAIVE, mach)
        assert tracer.metrics.counters["pipeline.cache_hits.mem"] == 1


class TestWorkerTraceMerge:
    """jobs=N runs must fold worker spans and metrics into the parent
    tracer so one coherent trace covers the whole fan-out."""

    @pytest.mark.slow
    def test_jobs4_counters_equal_serial(self, tmp_path):
        mach = machine(5, 2)
        jobs = [TimingJob("ex", SOURCE, kind, mach) for kind in Disambiguator]

        with obs.tracing() as serial_tracer:
            run_jobs(Pipeline(store=ArtifactStore(tmp_path / "serial")),
                     jobs, num_jobs=1)
        with obs.tracing() as parallel_tracer:
            run_jobs(Pipeline(store=ArtifactStore(tmp_path / "parallel")),
                     jobs, num_jobs=4)

        serial = serial_tracer.metrics.counters
        parallel = parallel_tracer.metrics.counters
        # per-job work counters must agree exactly
        for key in ("depgraph.builds", "timing.infinite_evals",
                    "sched.trees_scheduled"):
            assert parallel[key] == serial[key], key
        # shared-stage work (the profile simulation) may be duplicated
        # by workers racing on a cold cache, but is never lost
        assert parallel["sim.steps"] >= serial["sim.steps"]

    @pytest.mark.slow
    def test_jobs2_grafts_worker_spans(self, tmp_path):
        from repro.obs.export import to_chrome_trace, worker_pid_of

        mach = machine(5, 2)
        jobs = [TimingJob("ex", SOURCE, kind, mach) for kind in Disambiguator]
        with obs.tracing() as tracer:
            run_jobs(Pipeline(store=ArtifactStore(tmp_path)), jobs,
                     num_jobs=2)
        root = tracer.finish()

        worker_spans = [span for span in root.walk()
                        if span.name == "pipeline.worker_job"]
        assert len(worker_spans) == len(jobs)
        pids = {worker_pid_of(span) for span in worker_spans}
        assert None not in pids
        # every worker job subtree recorded real pipeline stages
        for span in worker_spans:
            names = {child.name for child in span.walk()}
            assert "pipeline.timing" in names

        # and the merged tree exports to one multi-pid chrome trace
        trace = to_chrome_trace(root)
        lanes = {event["pid"] for event in trace["traceEvents"]}
        assert len(lanes) >= 2

    @pytest.mark.slow
    def test_jobs2_merges_worker_histograms(self, tmp_path):
        mach = machine(5, 2)
        jobs = [TimingJob("ex", SOURCE, kind, mach) for kind in Disambiguator]
        with obs.tracing() as tracer:
            run_jobs(Pipeline(store=ArtifactStore(tmp_path)), jobs,
                     num_jobs=2)
        histograms = tracer.metrics.histograms
        assert histograms["span.pipeline.timing"].count == len(jobs)
        assert histograms["span.pipeline.timing"].percentile(50) is not None


class TestParallelExperimentEquivalence:
    @pytest.mark.slow
    def test_figure6_2_jobs4_equals_jobs1(self, tmp_path):
        names = ["bcuint", "tree"]
        serial_runner = BenchmarkRunner(
            store=ArtifactStore(tmp_path / "serial"))
        parallel_runner = BenchmarkRunner(
            store=ArtifactStore(tmp_path / "parallel"))
        serial = figure6_2.run(serial_runner, names=names, jobs=1)
        parallel = figure6_2.run(parallel_runner, names=names, jobs=4)
        assert parallel.to_dict() == serial.to_dict()
        assert parallel.render() == serial.render()
