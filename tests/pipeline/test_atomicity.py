"""Disk-cache write atomicity under multi-process contention.

Every disk write in :mod:`repro.pipeline` goes through tempfile +
``os.replace`` (``ArtifactStore._disk_put``), so a reader can only ever
see a complete entry — never a torn half-write — no matter how many
processes share the cache directory.  This hammers one fingerprint from
eight processes (writers and readers interleaved) and asserts exactly
that invariant.
"""

import multiprocessing

import pytest

from repro.pipeline.shards import ShardedArtifactStore
from repro.pipeline.store import ArtifactStore

FP = "ab" + "1" * 62
ROUNDS = 40


def _hammer(root: str, worker: int, queue) -> None:
    """Alternate writes and reads of one fingerprint; report anything
    other than a complete, well-formed value."""
    try:
        store = ArtifactStore(root, max_memory_entries=1)
        evict = "evict-" + "0" * 58
        for round_index in range(ROUNDS):
            payload = {"worker": worker, "round": round_index,
                       "blob": b"x" * 4096}
            store.put("view", FP, payload)
            store.put("view", evict, "push the hammered key out of memory")
            value = store.get("view", FP)
            if value is None:
                # a concurrent os.replace is atomic: the entry may hold
                # any writer's value but must never be absent or torn
                queue.put(f"worker {worker}: read a missing entry")
                return
            if set(value) != {"worker", "round", "blob"} \
                    or len(value["blob"]) != 4096:
                queue.put(f"worker {worker}: read a torn entry {value!r}")
                return
        queue.put(None)
    except Exception as error:  # pragma: no cover - fail loudly
        queue.put(f"worker {worker}: {type(error).__name__}: {error}")


@pytest.mark.parametrize("store_class", [ArtifactStore,
                                         ShardedArtifactStore])
def test_eight_processes_one_fingerprint(tmp_path, store_class):
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    queue = context.SimpleQueue()
    processes = [context.Process(target=_hammer,
                                 args=(str(tmp_path), worker, queue))
                 for worker in range(8)]
    for process in processes:
        process.start()
    outcomes = [queue.get() for _ in processes]
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0
    assert outcomes == [None] * 8, [o for o in outcomes if o]
    # afterwards the entry is a complete value from *some* writer
    final = store_class(tmp_path).get("view", FP)
    assert final is not None and len(final["blob"]) == 4096
