"""Corpus-scale stress test: ShardedArtifactStore LRU under pressure.

A 100-program stratum streamed through the bench engine with a byte
budget two orders of magnitude below its artifact footprint must (a)
actually evict — the counters rise — and (b) change *nothing* about
the results: the stable payload is byte-identical to a run against an
unbounded store.  Eviction is allowed to cost recomputation, never
correctness.
"""

import json

import pytest

from repro.corpus import BuildSpec, build_manifest, run_corpus_bench
from repro.machine.description import machine
from repro.pipeline.core import Pipeline
from repro.pipeline.shards import ShardedArtifactStore
from repro.pipeline.store import ArtifactStore

BUDGET = 128 * 1024


@pytest.mark.slow
def test_lru_eviction_at_corpus_scale_is_result_invariant(tmp_path):
    spec = BuildSpec(target_size=100, per_config=100, smoke_size=10,
                     configs=("s-lo",))
    manifest = build_manifest(spec)
    assert len(manifest["entries"]) == 100
    mach = machine(5, 6)

    # a deliberately starved store: tiny disk budget, tiny memory tier
    # (so evicted artifacts cannot hide in memory and some really are
    # recomputed), aggressive eviction cadence
    sharded = ShardedArtifactStore(tmp_path / "sharded",
                                   max_memory_entries=16,
                                   size_budget_bytes=BUDGET,
                                   evict_check_interval=8)
    bounded = run_corpus_bench(Pipeline(store=sharded), manifest, mach,
                               jobs=1)
    unbounded = run_corpus_bench(
        Pipeline(store=ArtifactStore(tmp_path / "flat")), manifest, mach,
        jobs=1)

    # the starved store footprint stayed bounded and eviction fired
    assert bounded["lab"]["cache"]["shard_evictions"] > 0
    sharded.enforce_budget()
    assert sharded.disk_usage_bytes() <= BUDGET
    # the unbounded store really was over budget — the pressure is real
    flat_bytes = ArtifactStore(tmp_path / "flat")
    assert flat_bytes.root is not None
    total = sum(f.stat().st_size
                for f in (tmp_path / "flat").rglob("*") if f.is_file())
    assert total > 4 * BUDGET

    # identical results, byte for byte, once the host telemetry is off
    assert (json.dumps(dict(bounded, lab=None), sort_keys=True)
            == json.dumps(dict(unbounded, lab=None), sort_keys=True))

    # the unbounded run never evicts
    assert unbounded["lab"]["cache"]["shard_evictions"] == 0
