"""Tests for the artifact-store compilation pipeline (``repro.pipeline``)."""
