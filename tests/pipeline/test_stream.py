"""Streaming executor tests: :func:`repro.pipeline.executor.stream_jobs`.

The corpus-scale contract — results arrive lazily in job order, match
the batch path exactly, merge worker metrics but never span subtrees,
and never populate the parent's in-memory tier."""

import types

import pytest

from repro import obs
from repro.disambig.pipeline import Disambiguator
from repro.machine.description import machine
from repro.pipeline.core import Pipeline
from repro.pipeline.executor import TimingJob, ViewJob, run_jobs, stream_jobs
from repro.pipeline.store import ArtifactStore

SOURCE = """
int a[16];

int main() {
    int i;
    for (i = 0; i < 8; i = i + 1) {
        a[i] = i * 3;
        a[i + 4] = a[i] + 1;
    }
    print(a[5]);
    return 0;
}
"""

MACH = machine(5, 2)


def _jobs():
    return [ViewJob("st", SOURCE, Disambiguator.SPEC),
            TimingJob("st", SOURCE, Disambiguator.NAIVE, MACH),
            TimingJob("st", SOURCE, Disambiguator.SPEC, MACH),
            TimingJob("st", SOURCE, Disambiguator.PERFECT, MACH)]


def test_stream_is_lazy_and_ordered(tmp_path):
    pipe = Pipeline(store=ArtifactStore(tmp_path))
    stream = pipe.stream(_jobs(), num_jobs=1)
    assert isinstance(stream, types.GeneratorType)
    first = next(stream)
    assert first.kind == Disambiguator.SPEC
    rest = list(stream)
    assert [a.kind for a in rest] == [Disambiguator.NAIVE,
                                      Disambiguator.SPEC,
                                      Disambiguator.PERFECT]


def test_stream_matches_batch_results(tmp_path):
    batch = run_jobs(Pipeline(store=ArtifactStore(tmp_path / "batch")),
                     _jobs(), num_jobs=1)
    streamed = list(stream_jobs(
        Pipeline(store=ArtifactStore(tmp_path / "stream")), _jobs(),
        num_jobs=1))
    assert ([a.fingerprint for a in streamed]
            == [a.fingerprint for a in batch])


@pytest.mark.slow
def test_parallel_stream_matches_serial(tmp_path):
    serial = list(stream_jobs(
        Pipeline(store=ArtifactStore(tmp_path / "serial")), _jobs(),
        num_jobs=1))
    parallel = list(stream_jobs(
        Pipeline(store=ArtifactStore(tmp_path / "parallel")), _jobs(),
        num_jobs=4))
    assert ([a.fingerprint for a in parallel]
            == [a.fingerprint for a in serial])
    assert ([a.cycles for a in parallel[1:]]
            == [a.cycles for a in serial[1:]])


@pytest.mark.slow
def test_parallel_stream_keeps_parent_memory_tier_empty(tmp_path):
    pipe = Pipeline(store=ArtifactStore(tmp_path))
    results = list(stream_jobs(pipe, _jobs(), num_jobs=2))
    assert len(results) == 4
    # O(1) parent memory: artifacts are yielded, not accumulated (the
    # batch path run_jobs inserts them all — see its contract)
    assert len(pipe.store._memory) == 0
    # ... but the shared disk tier was fully populated by the workers
    warm = Pipeline(store=ArtifactStore(tmp_path))
    with obs.tracing() as tracer:
        warm.timing("st", SOURCE, Disambiguator.NAIVE, MACH)
    counters = tracer.metrics.counters
    assert counters.get("pipeline.cache_hits.disk", 0) > 0
    assert counters.get("pipeline.cache_misses", 0) == 0


@pytest.mark.slow
def test_parallel_stream_merges_metrics_but_not_spans(tmp_path):
    with obs.tracing() as tracer:
        list(stream_jobs(Pipeline(store=ArtifactStore(tmp_path)), _jobs(),
                         num_jobs=2))
        root = tracer.root
    counters = tracer.metrics.counters
    assert counters.get("pipeline.cache_misses", 0) > 0
    assert counters.get("pipeline.parallel_tasks") == 4
    # worker stage histograms merged into the parent registry
    assert any(name.startswith("span.pipeline.")
               for name in tracer.metrics.histograms)
    # ... but no worker_job span subtrees were shipped or grafted

    def span_names(span):
        yield span.name
        for child in span.children:
            yield from span_names(child)

    names = list(span_names(root))
    assert "pipeline.stream" in names
    assert "pipeline.worker_job" not in names
