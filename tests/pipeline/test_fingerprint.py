"""Fingerprint sensitivity: every cache-relevant input must change the key.

The store serves whatever the fingerprint addresses, so correctness of
the whole cache reduces to: two configurations that can produce
different artifacts must never share a fingerprint.
"""

from dataclasses import replace

from repro.disambig.pipeline import Disambiguator
from repro.disambig.spd_heuristic import SpDConfig
from repro.frontend.grafting import GraftConfig
from repro.machine.description import machine
from repro.passes import DEFAULT_CLEANUP, PassPipelineConfig
from repro.pipeline.core import Pipeline
from repro.pipeline.fingerprint import PIPELINE_VERSION, fingerprint
from repro.pipeline.store import ArtifactStore

SOURCE = """
float a[8];
int main() {
    a[1] = 2.0;
    print(a[1]);
    return 0;
}
"""


def memory_pipeline(**kwargs) -> Pipeline:
    return Pipeline(store=ArtifactStore(root=None), **kwargs)


class TestFingerprintFunction:
    def test_deterministic(self):
        assert fingerprint({"a": 1}) == fingerprint({"a": 1})

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_payload_sensitivity(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_version_salt_present(self):
        # bumping PIPELINE_VERSION must invalidate every existing key
        assert fingerprint({}) != fingerprint({"pipeline_version":
                                               PIPELINE_VERSION + 1})


class TestCompileFingerprint:
    def test_source_change(self):
        pipe = memory_pipeline()
        assert (pipe.compile_fingerprint(SOURCE)
                != pipe.compile_fingerprint(SOURCE + "\n"))

    def test_graft_config_change(self):
        plain = memory_pipeline()
        grafted = memory_pipeline(graft=GraftConfig())
        tweaked = memory_pipeline(graft=GraftConfig(max_passes=1))
        fps = {p.compile_fingerprint(SOURCE) for p in (plain, grafted, tweaked)}
        assert len(fps) == 3

    def test_stable_across_instances(self):
        assert (memory_pipeline().compile_fingerprint(SOURCE)
                == memory_pipeline().compile_fingerprint(SOURCE))

    def test_guard_words_change(self):
        # guard_words alters the lowered IR, so it must key compiled
        # artifacts (and, chained, every downstream stage)
        plain = memory_pipeline()
        padded = memory_pipeline(guard_words=2)
        assert (plain.compile_fingerprint(SOURCE)
                != padded.compile_fingerprint(SOURCE))
        assert (plain.view_fingerprint(SOURCE, Disambiguator.STATIC)
                != padded.view_fingerprint(SOURCE, Disambiguator.STATIC))


class TestViewFingerprint:
    def test_kind_change(self):
        pipe = memory_pipeline()
        fps = {pipe.view_fingerprint(SOURCE, kind) for kind in Disambiguator}
        assert len(fps) == len(Disambiguator)

    def test_spd_config_changes_spec_view(self):
        base = memory_pipeline()
        tweaked = memory_pipeline(
            spd_config=replace(SpDConfig(), min_gain=2.5))
        assert (base.view_fingerprint(SOURCE, Disambiguator.SPEC)
                != tweaked.view_fingerprint(SOURCE, Disambiguator.SPEC))

    def test_spd_config_irrelevant_to_static_view(self):
        # only SPEC's Gain() heuristic reads the knobs; STATIC/NAIVE/
        # PERFECT views are shared across SpD configurations
        base = memory_pipeline()
        tweaked = memory_pipeline(
            spd_config=replace(SpDConfig(), min_gain=2.5))
        assert (base.view_fingerprint(SOURCE, Disambiguator.STATIC)
                == tweaked.view_fingerprint(SOURCE, Disambiguator.STATIC))

    def test_latency_table_changes_spec_view(self):
        pipe = memory_pipeline()
        assert (pipe.view_fingerprint(SOURCE, Disambiguator.SPEC, 2)
                != pipe.view_fingerprint(SOURCE, Disambiguator.SPEC, 6))

    def test_latency_irrelevant_to_static_view(self):
        pipe = memory_pipeline()
        assert (pipe.view_fingerprint(SOURCE, Disambiguator.STATIC, 2)
                == pipe.view_fingerprint(SOURCE, Disambiguator.STATIC, 6))

    def test_source_change_propagates(self):
        pipe = memory_pipeline()
        assert (pipe.view_fingerprint(SOURCE, Disambiguator.SPEC)
                != pipe.view_fingerprint(SOURCE + "\n", Disambiguator.SPEC))


class TestPassPipelineFingerprint:
    def test_cleanup_list_changes_every_view_kind(self):
        plain = memory_pipeline()
        cleaned = memory_pipeline(
            passes=PassPipelineConfig(cleanup=DEFAULT_CLEANUP))
        for kind in Disambiguator:
            assert (plain.view_fingerprint(SOURCE, kind)
                    != cleaned.view_fingerprint(SOURCE, kind)), kind

    def test_cleanup_order_matters(self):
        forward = memory_pipeline(
            passes=PassPipelineConfig(cleanup=("constfold", "dce")))
        reverse = memory_pipeline(
            passes=PassPipelineConfig(cleanup=("dce", "constfold")))
        assert (forward.view_fingerprint(SOURCE, Disambiguator.SPEC)
                != reverse.view_fingerprint(SOURCE, Disambiguator.SPEC))

    def test_observational_knobs_do_not_change_fingerprint(self):
        quiet = memory_pipeline(
            passes=PassPipelineConfig(cleanup=DEFAULT_CLEANUP))
        loud = memory_pipeline(
            passes=PassPipelineConfig(cleanup=DEFAULT_CLEANUP,
                                      validate=False,
                                      dump_after=("dce",)))
        assert (quiet.view_fingerprint(SOURCE, Disambiguator.SPEC)
                == loud.view_fingerprint(SOURCE, Disambiguator.SPEC))

    def test_compile_fingerprint_ignores_cleanup(self):
        # cleanup runs inside disambiguation; compiled artifacts are
        # shared across pass configurations
        plain = memory_pipeline()
        cleaned = memory_pipeline(
            passes=PassPipelineConfig(cleanup=DEFAULT_CLEANUP))
        assert (plain.compile_fingerprint(SOURCE)
                == cleaned.compile_fingerprint(SOURCE))

    def test_dump_after_bypasses_view_cache(self):
        store = ArtifactStore(root=None)
        pipe = Pipeline(store=store,
                        passes=PassPipelineConfig(cleanup=DEFAULT_CLEANUP,
                                                  dump_after=("dce",)))
        dumped = pipe.view("t", SOURCE, Disambiguator.SPEC)
        key = pipe.view_fingerprint(SOURCE, Disambiguator.SPEC)
        assert store.get("view", key) is None
        # a second call recomputes rather than serving a cached artifact
        again = pipe.view("t", SOURCE, Disambiguator.SPEC)
        assert again is not dumped


class TestTimingFingerprint:
    def test_machine_change(self):
        pipe = memory_pipeline()
        assert (pipe.timing_fingerprint(SOURCE, Disambiguator.SPEC,
                                        machine(5, 2))
                != pipe.timing_fingerprint(SOURCE, Disambiguator.SPEC,
                                           machine(7, 2)))

    def test_memory_latency_change(self):
        pipe = memory_pipeline()
        assert (pipe.timing_fingerprint(SOURCE, Disambiguator.NAIVE,
                                        machine(5, 2))
                != pipe.timing_fingerprint(SOURCE, Disambiguator.NAIVE,
                                           machine(5, 6)))


class TestEngineFingerprint:
    """Profile/view artifacts are keyed on the execution engine: a
    miscompiling engine must never poison reference-engine entries."""

    def test_profile_fingerprint_engine_sensitive(self):
        jit = memory_pipeline(engine="jit")
        interp = memory_pipeline(engine="interp")
        assert (jit.profile_fingerprint(SOURCE)
                != interp.profile_fingerprint(SOURCE))

    def test_view_fingerprint_engine_sensitive(self):
        jit = memory_pipeline(engine="jit")
        interp = memory_pipeline(engine="interp")
        assert (jit.view_fingerprint(SOURCE, Disambiguator.SPEC)
                != interp.view_fingerprint(SOURCE, Disambiguator.SPEC))

    def test_compile_fingerprint_engine_insensitive(self):
        # compilation never executes the program; compiled artifacts are
        # shared across engines
        assert (memory_pipeline(engine="jit").compile_fingerprint(SOURCE)
                == memory_pipeline(engine="interp")
                .compile_fingerprint(SOURCE))

    def test_unknown_engine_rejected_at_construction(self):
        import pytest
        with pytest.raises(ValueError, match="unknown execution engine"):
            memory_pipeline(engine="nonesuch")

    def test_engines_share_no_artifacts_in_one_store(self):
        store = ArtifactStore(root=None)
        jit = Pipeline(store=store, engine="jit")
        interp = Pipeline(store=store, engine="interp")
        jit_profile = jit.profile("t", SOURCE)
        interp_profile = interp.profile("t", SOURCE)
        # verified-equivalent engines: same observable profile...
        assert (jit_profile.profile.tree_counts
                == interp_profile.profile.tree_counts)
        # ...via distinct cache rows
        assert (store.get("profile", jit.profile_fingerprint(SOURCE))
                is not None)
        assert (jit.profile_fingerprint(SOURCE)
                != interp.profile_fingerprint(SOURCE))
