"""Fingerprint sensitivity: every cache-relevant input must change the key.

The store serves whatever the fingerprint addresses, so correctness of
the whole cache reduces to: two configurations that can produce
different artifacts must never share a fingerprint.
"""

from dataclasses import replace

from repro.disambig.pipeline import Disambiguator
from repro.disambig.spd_heuristic import SpDConfig
from repro.frontend.grafting import GraftConfig
from repro.machine.description import machine
from repro.pipeline.core import Pipeline
from repro.pipeline.fingerprint import PIPELINE_VERSION, fingerprint
from repro.pipeline.store import ArtifactStore

SOURCE = """
float a[8];
int main() {
    a[1] = 2.0;
    print(a[1]);
    return 0;
}
"""


def memory_pipeline(**kwargs) -> Pipeline:
    return Pipeline(store=ArtifactStore(root=None), **kwargs)


class TestFingerprintFunction:
    def test_deterministic(self):
        assert fingerprint({"a": 1}) == fingerprint({"a": 1})

    def test_key_order_irrelevant(self):
        assert fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})

    def test_payload_sensitivity(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_version_salt_present(self):
        # bumping PIPELINE_VERSION must invalidate every existing key
        assert fingerprint({}) != fingerprint({"pipeline_version":
                                               PIPELINE_VERSION + 1})


class TestCompileFingerprint:
    def test_source_change(self):
        pipe = memory_pipeline()
        assert (pipe.compile_fingerprint(SOURCE)
                != pipe.compile_fingerprint(SOURCE + "\n"))

    def test_graft_config_change(self):
        plain = memory_pipeline()
        grafted = memory_pipeline(graft=GraftConfig())
        tweaked = memory_pipeline(graft=GraftConfig(max_passes=1))
        fps = {p.compile_fingerprint(SOURCE) for p in (plain, grafted, tweaked)}
        assert len(fps) == 3

    def test_stable_across_instances(self):
        assert (memory_pipeline().compile_fingerprint(SOURCE)
                == memory_pipeline().compile_fingerprint(SOURCE))


class TestViewFingerprint:
    def test_kind_change(self):
        pipe = memory_pipeline()
        fps = {pipe.view_fingerprint(SOURCE, kind) for kind in Disambiguator}
        assert len(fps) == len(Disambiguator)

    def test_spd_config_changes_spec_view(self):
        base = memory_pipeline()
        tweaked = memory_pipeline(
            spd_config=replace(SpDConfig(), min_gain=2.5))
        assert (base.view_fingerprint(SOURCE, Disambiguator.SPEC)
                != tweaked.view_fingerprint(SOURCE, Disambiguator.SPEC))

    def test_spd_config_irrelevant_to_static_view(self):
        # only SPEC's Gain() heuristic reads the knobs; STATIC/NAIVE/
        # PERFECT views are shared across SpD configurations
        base = memory_pipeline()
        tweaked = memory_pipeline(
            spd_config=replace(SpDConfig(), min_gain=2.5))
        assert (base.view_fingerprint(SOURCE, Disambiguator.STATIC)
                == tweaked.view_fingerprint(SOURCE, Disambiguator.STATIC))

    def test_latency_table_changes_spec_view(self):
        pipe = memory_pipeline()
        assert (pipe.view_fingerprint(SOURCE, Disambiguator.SPEC, 2)
                != pipe.view_fingerprint(SOURCE, Disambiguator.SPEC, 6))

    def test_latency_irrelevant_to_static_view(self):
        pipe = memory_pipeline()
        assert (pipe.view_fingerprint(SOURCE, Disambiguator.STATIC, 2)
                == pipe.view_fingerprint(SOURCE, Disambiguator.STATIC, 6))

    def test_source_change_propagates(self):
        pipe = memory_pipeline()
        assert (pipe.view_fingerprint(SOURCE, Disambiguator.SPEC)
                != pipe.view_fingerprint(SOURCE + "\n", Disambiguator.SPEC))


class TestTimingFingerprint:
    def test_machine_change(self):
        pipe = memory_pipeline()
        assert (pipe.timing_fingerprint(SOURCE, Disambiguator.SPEC,
                                        machine(5, 2))
                != pipe.timing_fingerprint(SOURCE, Disambiguator.SPEC,
                                           machine(7, 2)))

    def test_memory_latency_change(self):
        pipe = memory_pipeline()
        assert (pipe.timing_fingerprint(SOURCE, Disambiguator.NAIVE,
                                        machine(5, 2))
                != pipe.timing_fingerprint(SOURCE, Disambiguator.NAIVE,
                                           machine(5, 6)))
