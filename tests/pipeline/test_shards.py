"""ShardedArtifactStore: LRU size budget, shard locks, flat migration."""

import os
import pickle
import threading

import pytest

from repro import obs
from repro.pipeline.fingerprint import PIPELINE_VERSION
from repro.pipeline.shards import ShardedArtifactStore
from repro.pipeline.store import ArtifactStore


def fp(index: int) -> str:
    """Distinct 64-hex fingerprints spread over distinct shards."""
    return f"{index:02x}" + "0" * 62


def entry_size(store, stage, fingerprint) -> int:
    return store._path(stage, fingerprint).stat().st_size


def set_mtime(store, stage, fingerprint, when: float) -> None:
    os.utime(store._path(stage, fingerprint), (when, when))


class TestBudgetEviction:
    def test_evicts_oldest_until_under_budget(self, tmp_path):
        store = ShardedArtifactStore(tmp_path, size_budget_bytes=0)
        for index in range(4):
            store.put("view", fp(index), f"value-{index}")
            set_mtime(store, "view", fp(index), 1_000_000 + index)
        evicted = store.enforce_budget()
        assert evicted == 4
        assert store.disk_usage_bytes() == 0

    def test_hot_fingerprints_survive(self, tmp_path):
        store = ShardedArtifactStore(tmp_path)
        for index in range(4):
            store.put("view", fp(index), f"value-{index}")
            set_mtime(store, "view", fp(index), 1_000_000 + index)
        one = entry_size(store, "view", fp(0))
        # a *read* refreshes the entry's mtime, making it hot: budget
        # for two entries must keep the read one plus the newest
        fresh = ShardedArtifactStore(tmp_path, size_budget_bytes=2 * one)
        assert fresh.get("view", fp(0)) == "value-0"
        fresh.enforce_budget()
        kept = {fingerprint for fingerprint in map(fp, range(4))
                if fresh._path("view", fingerprint).exists()}
        assert kept == {fp(0), fp(3)}

    def test_evicted_entry_rebuilds(self, tmp_path):
        store = ShardedArtifactStore(tmp_path, size_budget_bytes=0,
                                     max_memory_entries=1)
        store.put("view", fp(1), "first")
        store.enforce_budget()
        store.put("view", fp(2), "pushes-first-out-of-memory")
        assert ShardedArtifactStore(tmp_path).get("view", fp(1)) is None
        store.put("view", fp(1), "rebuilt")
        assert ShardedArtifactStore(tmp_path).get("view", fp(1)) == "rebuilt"

    def test_opportunistic_check_every_interval(self, tmp_path):
        store = ShardedArtifactStore(tmp_path, size_budget_bytes=0,
                                     evict_check_interval=3)
        store.put("view", fp(1), "a")
        store.put("view", fp(2), "b")
        assert store.disk_usage_bytes() > 0   # not yet checked
        store.put("view", fp(3), "c")          # third put sweeps
        assert store.disk_usage_bytes() == 0

    def test_counters_and_gauge(self, tmp_path):
        with obs.tracing() as tracer:
            store = ShardedArtifactStore(tmp_path, size_budget_bytes=0)
            store.put("view", fp(1), "x")
            store.enforce_budget()
        assert tracer.metrics.counters["pipeline.shard.evictions"] == 1
        assert tracer.metrics.gauges["pipeline.shard.bytes"] == 0

    def test_rejects_negative_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedArtifactStore(tmp_path, size_budget_bytes=-1)

    def test_memory_only_store_has_nothing_to_evict(self):
        store = ShardedArtifactStore(None, size_budget_bytes=0)
        store.put("view", fp(1), "x")
        assert store.enforce_budget() == 0
        assert store.get("view", fp(1)) == "x"


class TestShardStats:
    def test_stats_shape(self, tmp_path):
        store = ShardedArtifactStore(tmp_path, size_budget_bytes=1 << 20)
        store.put("view", fp(1), "a")
        store.put("view", fp(2), "b")
        store.put("timing", fp(1), "c")
        stats = store.shard_stats()
        assert stats["entries"] == 3
        assert stats["bytes"] == store.disk_usage_bytes() > 0
        assert stats["budget_bytes"] == 1 << 20
        assert stats["per_stage"] == {"timing": 1, "view": 2}


class TestFlatMigration:
    def write_flat(self, store, stage, fingerprint, artifact,
                   version=PIPELINE_VERSION):
        flat = store._flat_path(stage, fingerprint)
        flat.parent.mkdir(parents=True, exist_ok=True)
        with open(flat, "wb") as handle:
            pickle.dump({"version": version, "artifact": artifact}, handle)
        return flat

    def test_flat_entry_migrates_on_read(self, tmp_path):
        store = ShardedArtifactStore(tmp_path)
        flat = self.write_flat(store, "view", fp(1), {"cycles": 7})
        with obs.tracing() as tracer:
            assert store.get("view", fp(1)) == {"cycles": 7}
        assert not flat.exists()
        assert store._path("view", fp(1)).exists()
        assert tracer.metrics.counters["pipeline.shard.migrated"] == 1
        # a cold store now reads it from the sharded location
        assert ShardedArtifactStore(tmp_path).get("view", fp(1)) == \
            {"cycles": 7}

    def test_sharded_entry_wins_over_flat(self, tmp_path):
        store = ShardedArtifactStore(tmp_path)
        store.put("view", fp(1), "sharded")
        flat = self.write_flat(store, "view", fp(1), "flat-stale")
        assert ShardedArtifactStore(tmp_path).get("view", fp(1)) == "sharded"
        assert flat.exists()  # untouched: the shard hit short-circuits

    def test_corrupt_flat_entry_dropped(self, tmp_path):
        store = ShardedArtifactStore(tmp_path)
        flat = store._flat_path("view", fp(1))
        flat.parent.mkdir(parents=True)
        flat.write_bytes(b"\x80garbage that is not a pickle")
        assert store.get("view", fp(1)) is None
        assert not flat.exists()

    def test_stale_version_flat_entry_dropped(self, tmp_path):
        store = ShardedArtifactStore(tmp_path)
        flat = self.write_flat(store, "view", fp(1), "old",
                               version=PIPELINE_VERSION - 1)
        assert store.get("view", fp(1)) is None
        assert not flat.exists()


class TestShardLocks:
    def test_one_lock_per_shard(self, tmp_path):
        store = ShardedArtifactStore(tmp_path)
        lock_a = store._shard_lock("view", fp(1))
        lock_b = store._shard_lock("view", fp(1) + "x")  # same prefix
        lock_c = store._shard_lock("view", fp(2))
        lock_d = store._shard_lock("timing", fp(1))
        assert lock_a is lock_b
        assert lock_a is not lock_c
        assert lock_a is not lock_d

    def test_threaded_contention_same_shard(self, tmp_path):
        """Many threads hammering one shard: every write lands intact
        and no reader ever observes a torn or half-written value."""
        store = ShardedArtifactStore(tmp_path, max_memory_entries=1)
        # eight fingerprints sharing one shard directory (same prefix)
        fingerprints = [fp(1)[:2] + f"{i:062x}" for i in range(8)]
        errors = []
        seen = []

        def worker(thread_index):
            try:
                for round_index in range(25):
                    fingerprint = fingerprints[
                        (thread_index + round_index) % len(fingerprints)]
                    store.put("view", fingerprint,
                              {"fp": fingerprint, "round": round_index})
                    value = store.get("view", fingerprint)
                    if value is not None:
                        assert value["fp"] == fingerprint
                        seen.append(value)
            except Exception as error:  # pragma: no cover - fail loudly
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert seen
        for fingerprint in fingerprints:
            value = ShardedArtifactStore(tmp_path).get("view", fingerprint)
            assert value is not None and value["fp"] == fingerprint


class TestIsDropInForArtifactStore:
    def test_reads_plain_store_layout(self, tmp_path):
        ArtifactStore(tmp_path).put("view", fp(1), "from-base")
        assert ShardedArtifactStore(tmp_path).get("view", fp(1)) == \
            "from-base"

    def test_plain_store_reads_sharded_writes(self, tmp_path):
        ShardedArtifactStore(tmp_path).put("view", fp(1), "from-sharded")
        assert ArtifactStore(tmp_path).get("view", fp(1)) == "from-sharded"
