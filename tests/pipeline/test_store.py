"""The two-tier artifact store: round-trips, eviction, defensive reads."""

import pickle

import pytest

from repro import obs
from repro.pipeline.fingerprint import PIPELINE_VERSION
from repro.pipeline.store import ArtifactStore, default_cache_dir

FP = "ab" + "0" * 62


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == tmp_path

    def test_empty_env_disables_disk(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        assert default_cache_dir() is None
        assert ArtifactStore().root is None

    def test_unset_falls_back_to_home(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / ".cache" / "repro-spd"


class TestMemoryTier:
    def test_round_trip(self):
        store = ArtifactStore(root=None)
        store.put("compiled", FP, {"payload": 1})
        assert store.get("compiled", FP) == {"payload": 1}

    def test_miss(self):
        assert ArtifactStore(root=None).get("compiled", FP) is None

    def test_stages_are_namespaced(self):
        store = ArtifactStore(root=None)
        store.put("compiled", FP, "a")
        assert store.get("view", FP) is None

    def test_lru_evicts_oldest(self):
        store = ArtifactStore(root=None, max_memory_entries=2)
        store.put("s", "f1", 1)
        store.put("s", "f2", 2)
        store.get("s", "f1")           # refresh f1; f2 is now oldest
        store.put("s", "f3", 3)
        assert len(store) == 2
        assert store.get("s", "f2") is None
        assert store.get("s", "f1") == 1


class TestDiskTier:
    def test_round_trip_fresh_store(self, tmp_path):
        ArtifactStore(tmp_path).put("view", FP, {"cycles": 42})
        # a brand-new store (cold memory tier) must read it back from disk
        assert ArtifactStore(tmp_path).get("view", FP) == {"cycles": 42}

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        ArtifactStore(tmp_path).put("view", FP, "x")
        store = ArtifactStore(tmp_path)
        store.get("view", FP)
        assert len(store) == 1

    def test_corrupt_entry_is_dropped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("view", FP, "good")
        path = store._path("view", FP)
        path.write_bytes(b"\x80garbage that is not a pickle")
        fresh = ArtifactStore(tmp_path)
        assert fresh.get("view", FP) is None
        assert not path.exists()
        # and a rebuild repopulates the same slot
        fresh.put("view", FP, "rebuilt")
        assert ArtifactStore(tmp_path).get("view", FP) == "rebuilt"

    def test_stale_version_is_dropped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store._path("view", FP)
        path.parent.mkdir(parents=True)
        with open(path, "wb") as handle:
            pickle.dump({"version": PIPELINE_VERSION - 1, "artifact": "old"},
                        handle)
        assert store.get("view", FP) is None
        assert not path.exists()

    def test_unexpected_layout_is_dropped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store._path("view", FP)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps(["not", "a", "dict"]))
        assert store.get("view", FP) is None
        assert not path.exists()

    def test_unwritable_root_degrades_to_memory(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("")
        store = ArtifactStore(blocker / "cache")  # mkdir will fail
        store.put("view", FP, "x")
        assert store.get("view", FP) == "x"

    def test_sharded_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store._path("view", FP) == \
            tmp_path / "view" / FP[:2] / f"{FP}.pkl"


class TestCounters:
    @pytest.fixture
    def tracer(self):
        with obs.tracing() as tracer:
            yield tracer

    def test_miss_then_hit_counters(self, tracer):
        store = ArtifactStore(root=None)
        store.get("compiled", FP)
        store.put("compiled", FP, "x")
        store.get("compiled", FP)
        counters = tracer.metrics.counters
        assert counters["pipeline.cache_misses"] == 1
        assert counters["pipeline.compiled.cache_misses"] == 1
        assert counters["pipeline.cache_hits.mem"] == 1
        assert counters["pipeline.compiled.cache_hits"] == 1

    def test_disk_hit_counter(self, tracer, tmp_path):
        ArtifactStore(tmp_path).put("view", FP, "x")
        ArtifactStore(tmp_path).get("view", FP)
        assert tracer.metrics.counters["pipeline.cache_hits.disk"] == 1

    def test_eviction_counter(self, tracer, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store._path("view", FP)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"junk")
        store.get("view", FP)
        assert tracer.metrics.counters["pipeline.cache_evicted"] == 1
