"""Unit tests for table rendering."""

from repro.experiments import format_percent, format_table


class TestFormatPercent:
    def test_positive(self):
        assert format_percent(0.123) == "+12.3%"

    def test_negative(self):
        assert format_percent(-0.05) == "-5.0%"

    def test_zero(self):
        assert format_percent(0.0) == "+0.0%"


class TestFormatTable:
    def test_structure(self):
        text = format_table("Title", ["name", "value"],
                            [("alpha", 1), ("beta", 22)])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "name" in lines[2] and "value" in lines[2]
        assert "alpha" in text and "22" in text

    def test_column_widths_fit_content(self):
        text = format_table("T", ["a"], [("a-very-long-cell",)])
        assert "a-very-long-cell" in text

    def test_first_column_left_rest_right(self):
        text = format_table("T", ["name", "n"], [("x", 5)])
        row = text.splitlines()[-2]
        assert row.startswith("x")
        assert row.rstrip().endswith("5")

    def test_empty_rows(self):
        text = format_table("T", ["a", "b"], [])
        assert "T" in text and "a" in text
