"""Shape tests for the experiment harness: each table/figure regenerates
and reproduces the paper's qualitative claims.

These are the repository's core "reproduction" assertions; the
benchmarks/ directory re-runs the same harness with timing.
"""

import pytest

from repro.bench import NRC_BENCHMARKS, REPORTED, UNAFFECTED
from repro.disambig import Disambiguator
from repro.experiments import (figure6_2, figure6_3, figure6_4, table6_1,
                               table6_2, table6_3)
from repro.machine import machine


@pytest.fixture(scope="module")
def t63(runner):
    return table6_3.run(runner)


@pytest.fixture(scope="module")
def f62(runner):
    return figure6_2.run(runner)


@pytest.fixture(scope="module")
def f63(runner):
    return figure6_3.run(runner)


@pytest.fixture(scope="module")
def f64(runner):
    return figure6_4.run(runner)


class TestTable61:
    def test_matches_paper(self):
        assert table6_1.run().matches_paper()

    def test_render(self):
        text = table6_1.run().render()
        assert "Integer multiplies" in text and "2 or 6" in text


class TestTable62:
    def test_eleven_reported_rows(self):
        assert len(table6_2.run().rows()) == len(REPORTED)

    def test_render_contains_suites(self):
        text = table6_2.run().render()
        for suite in ("NRC", "StanfInt", "SPEC"):
            assert suite in text


class TestTable63:
    def test_war_never_selected(self, t63):
        """Paper: 'For this particular set of benchmarks, it does not
        benefit WAR dependences at all.'"""
        for memory_latency in (2, 6):
            _raw, war, _waw = t63.totals(memory_latency)
            assert war == 0

    def test_raw_important(self, t63):
        """Paper: RAW dependences benefit most (87 vs 22 WAW at 2-cycle
        memory).  Our RAW share is lower — the kernels are smaller and
        the accept check rolls back RAW applications whose replicated
        stores re-serialise (see EXPERIMENTS.md, Deviations) — but RAW
        must stay at least on par with WAW at 2-cycle memory and beat
        WAR everywhere."""
        raw2, war2, waw2 = t63.totals(2)
        assert raw2 >= waw2
        assert raw2 > war2
        raw6, war6, _waw6 = t63.totals(6)
        assert raw6 > war6
        assert raw6 >= 5

    def test_applications_exist(self, t63):
        raw2, _w, waw2 = t63.totals(2)
        assert raw2 + waw2 >= 5

    def test_applications_at_both_latencies(self, t63):
        """Paper's totals grow slightly with latency (87+22 -> 94+30);
        ours shrink instead because the accept check prunes harder at
        6-cycle memory (see EXPERIMENTS.md, Deviations) — but a healthy
        population of applications must exist at both latencies."""
        assert sum(t63.totals(2)) >= 15
        assert sum(t63.totals(6)) >= 12

    def test_render(self, t63):
        text = t63.render()
        assert "TOTAL" in text and "espresso" in text


class TestFigure62:
    def test_spec_bridges_static_perfect_gap(self, f62):
        """SPEC never loses to STATIC, never beats PERFECT by much
        except where dynamic disambiguation legitimately wins."""
        for (name, _lat), bars in f62.speedups.items():
            static = bars[Disambiguator.STATIC]
            spec = bars[Disambiguator.SPEC]
            assert spec >= static - 1e-9, name

    def test_spec_gains_somewhere(self, f62):
        gains = [bars[Disambiguator.SPEC] - bars[Disambiguator.STATIC]
                 for bars in f62.speedups.values()]
        assert max(gains) > 0.05

    def test_quick_spec_outperforms_perfect(self, f62):
        """Paper: 'Note that for the benchmark quick, SPEC outperforms
        PERFECT, despite the code overhead incurred by SpD.'"""
        for lat in (2, 6):
            bars = f62.speedups[("quick", lat)]
            assert bars[Disambiguator.SPEC] > bars[Disambiguator.PERFECT]

    def test_memory_latency_amplifies_the_gap(self, f62):
        """The static-to-perfect gap (which SpD bridges) widens at
        6-cycle memory, aggregated over the benchmarks."""
        def gap(lat):
            return sum(
                bars[Disambiguator.PERFECT] - bars[Disambiguator.STATIC]
                for (_name, latency), bars in f62.speedups.items()
                if latency == lat)
        assert gap(6) > gap(2)

    def test_render(self, f62):
        assert "SPEC@6" in f62.render()


class TestFigure63:
    def test_narrow_machines_can_lose(self, f63):
        """Paper: 'Because SpD produces additional code, it will
        actually slow down machines with insufficient resource.'"""
        one_fu = [series[0] for series in f63.series.values()]
        assert min(one_fu) < 0

    def test_crossover_between_two_and_three_fus_at_mem2(self, f63):
        """Paper: 'With a two cycle memory latency, most programs need
        between two and three functional units to take advantage.'"""
        crossovers = [f63.crossover_width(name, 2)
                      for name in NRC_BENCHMARKS]
        assert sorted(crossovers)[len(crossovers) // 2] in (2, 3)

    def test_mem6_profits_at_narrower_widths(self, f63):
        """Paper: 'When the memory latency is increased to six cycles,
        most programs will benefit from SpD with as few as one
        functional unit.'"""
        for name in NRC_BENCHMARKS:
            assert (f63.crossover_width(name, 6)
                    <= f63.crossover_width(name, 2))

    def test_wide_machine_gains_larger_at_mem6(self, f63):
        """Ambiguous aliases hinder performance more as memory latency
        increases (paper Section 6.3)."""
        gain2 = sum(f63.series[(n, 2)][7] for n in NRC_BENCHMARKS)
        gain6 = sum(f63.series[(n, 6)][7] for n in NRC_BENCHMARKS)
        assert gain6 > gain2

    def test_monotone_in_width(self, f63):
        """More functional units never make SpD relatively worse by
        much (small scheduler noise tolerated)."""
        for series in f63.series.values():
            assert series[7] >= series[0] - 1e-9


class TestFigure64:
    def test_growth_nonnegative_and_bounded(self, f64):
        for name in REPORTED:
            growth = f64.growth(name)
            assert 0 <= growth <= 1.0  # within MaxExpansion

    def test_some_growth_observed(self, f64):
        assert max(f64.growth(n) for n in REPORTED) > 0.01

    def test_cost_benefit_varies(self, f64):
        """The paper contrasts smooft (tiny cost, real speedup) with
        solvde (large cost, little speedup): growth must not be uniform."""
        growths = sorted(f64.growth(n) for n in REPORTED)
        assert growths[-1] > growths[0]

    def test_render(self, f64):
        assert "Base ops" in f64.render()


class TestUnaffectedPrograms:
    def test_three_stanford_programs_unaffected(self, runner):
        """Paper: 'With StanfInt, three of the programs were not
        affected by SpD at all.'"""
        for name in UNAFFECTED:
            view = runner.view(name, Disambiguator.SPEC, 2)
            assert sum(view.spd_counts().values()) == 0
            assert runner.code_growth(name, 2) == 0.0

    def test_unaffected_spec_equals_static(self, runner):
        mach = machine(5, 2)
        for name in UNAFFECTED:
            assert runner.spec_over_static(name, mach) == pytest.approx(0.0)
