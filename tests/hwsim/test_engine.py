"""Unit tests for the per-tree cycle engine.

The fixture tree (``build_raw_tree_program``) has the paper's
Figure 4-4 shape::

    0 ADD    (store address)
    1 ADD    (load address)
    2 FADD   (stored value)
    3 STORE
    4 LOAD
    5 FMUL   (consumes the load)
    6 PRINT
    7 <halt exit>

so the store is event 0 and the load event 1, with one decision bit:
may the load bypass the store while its address is unknown?
"""

import pytest

from ..conftest import build_raw_tree_program
from repro.hwsim import MemEvent, TreeContext, simulate_tree
from repro.machine import HW_ORACLE_INFINITE, HwMachine, hw_machine

STORE_NODE, LOAD_NODE, EXIT_NODE = 3, 4, 7


@pytest.fixture(scope="module")
def tree():
    return build_raw_tree_program(3, 3).functions["main"].trees["t0"]


def ctx_for(tree, mach):
    return TreeContext(tree, mach)


def alias_events():
    return [MemEvent(STORE_NODE, True, 0), MemEvent(LOAD_NODE, False, 0)]


def disjoint_events():
    return [MemEvent(STORE_NODE, True, 0), MemEvent(LOAD_NODE, False, 1)]


class TestContext:
    def test_nodes_and_latencies(self, tree):
        mach = hw_machine(4)
        ctx = ctx_for(tree, mach)
        assert ctx.num_ops == 7
        assert ctx.num_nodes == 8
        assert ctx.latency[STORE_NODE] == mach.latencies.memory
        assert ctx.latency[EXIT_NODE] == mach.latencies.branch

    def test_renaming_drops_war_waw_keeps_raw(self, tree):
        ctx = ctx_for(tree, hw_machine(4))
        # the FMUL truly depends on the LOAD's completion
        assert any(src == LOAD_NODE for src, _rule in ctx.issue_preds[5])
        # no memory arcs exist statically: the LSQ handles them
        for node in range(ctx.num_nodes):
            assert all(src != STORE_NODE or node == EXIT_NODE
                       for src, _rule in ctx.issue_preds[node]) or \
                node != LOAD_NODE


class TestBypassAndViolation:
    def test_waiting_load_never_violates(self, tree):
        ctx = ctx_for(tree, hw_machine(4))
        result = simulate_tree(ctx, hw_machine(4), alias_events(),
                               {(0, 1): False})
        assert result.violations == ()
        assert result.squashes == 0
        # forwarding happens at store completion: the load cannot have
        # issued before the store completed
        assert result.final_issue[1] >= result.mem_completion[0]

    def test_bypassing_aliased_load_squashes_and_replays(self, tree):
        mach = hw_machine(4)
        ctx = ctx_for(tree, mach)
        waited = simulate_tree(ctx, mach, alias_events(), {(0, 1): False})
        violated = simulate_tree(ctx, mach, alias_events(), {(0, 1): True})
        assert violated.violations == ((LOAD_NODE, STORE_NODE),)
        assert violated.squashes == 1
        # the replay costs an extra issue slot and the penalty
        assert violated.slots_used == waited.slots_used + 1
        assert (violated.mem_completion[1]
                >= waited.mem_completion[1] + mach.replay_penalty)

    def test_bypassing_disjoint_load_is_free_speculation(self, tree):
        mach = hw_machine(4)
        ctx = ctx_for(tree, mach)
        result = simulate_tree(ctx, mach, disjoint_events(), {(0, 1): True})
        assert result.violations == ()
        assert result.spec_issues == 1
        waited = simulate_tree(ctx, mach, disjoint_events(), {(0, 1): False})
        assert result.path_times[0] <= waited.path_times[0]

    def test_violation_propagates_to_consumers(self, tree):
        """The FMUL that consumes the squashed load finishes later, so
        the whole path does."""
        mach = hw_machine(4)
        ctx = ctx_for(tree, mach)
        waited = simulate_tree(ctx, mach, alias_events(), {(0, 1): False})
        violated = simulate_tree(ctx, mach, alias_events(), {(0, 1): True})
        assert violated.path_times[0] > waited.path_times[0]


class TestResourceBounds:
    def test_single_fu_serialises(self, tree):
        ctx1 = ctx_for(tree, hw_machine(1))
        result = simulate_tree(ctx1, hw_machine(1), alias_events(),
                               {(0, 1): False})
        # 8 nodes, one issue per cycle: the last completion is at least
        # issue-cycle 7 plus its latency
        assert max(result.path_times) >= 8

    def test_infinite_machine_is_lower_bound(self, tree):
        events = alias_events()
        infinite = HW_ORACLE_INFINITE
        bound = simulate_tree(ctx_for(tree, infinite), infinite, events,
                              {(0, 1): False})
        for fus in (1, 2, 4):
            for window in (2, 8, None):
                mach = HwMachine(num_fus=fus, window=window,
                                 predictor="never")
                result = simulate_tree(ctx_for(tree, mach), mach, events,
                                       {(0, 1): False})
                assert result.path_times[0] >= bound.path_times[0], (
                    fus, window)

    def test_tight_window_slows_issue(self, tree):
        """A 1-entry window forces program order: cycles can only grow
        versus the unbounded window."""
        narrow = HwMachine(num_fus=4, window=1, predictor="never")
        wide = HwMachine(num_fus=4, window=None, predictor="never")
        narrow_result = simulate_tree(ctx_for(tree, narrow), narrow,
                                      alias_events(), {(0, 1): False})
        wide_result = simulate_tree(ctx_for(tree, wide), wide,
                                    alias_events(), {(0, 1): False})
        assert narrow_result.path_times[0] >= wide_result.path_times[0]

    def test_empty_event_list_still_times_all_nodes(self, tree):
        """Guard-false memory ops fall back to plain slots."""
        mach = hw_machine(2)
        result = simulate_tree(ctx_for(tree, mach), mach, [], {})
        assert len(result.path_times) == 1
        assert result.path_times[0] > 0
        assert result.violations == ()

    def test_deterministic(self, tree):
        mach = hw_machine(2)
        first = simulate_tree(ctx_for(tree, mach), mach, alias_events(),
                              {(0, 1): True})
        second = simulate_tree(ctx_for(tree, mach), mach, alias_events(),
                               {(0, 1): True})
        assert first == second
