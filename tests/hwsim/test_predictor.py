"""Unit tests for the memory-dependence predictors."""

import pytest

from repro.hwsim import (AlwaysSpeculate, NeverSpeculate, StoreSetPredictor,
                         make_predictor)

LOAD = ("main", "t0", 4)
STORE = ("main", "t0", 3)
OTHER_STORE = ("main", "t1", 9)
OTHER_LOAD = ("main", "t1", 11)


class TestFixedPolicies:
    def test_always_bypasses(self):
        predictor = AlwaysSpeculate()
        assert predictor.may_bypass(LOAD, STORE)
        predictor.train(LOAD, STORE)  # training is a no-op
        assert predictor.may_bypass(LOAD, STORE)

    def test_never_bypasses(self):
        predictor = NeverSpeculate()
        assert not predictor.may_bypass(LOAD, STORE)

    def test_state_key_mirrors_decision(self):
        assert AlwaysSpeculate().state_key(LOAD, STORE) is True
        assert NeverSpeculate().state_key(LOAD, STORE) is False


class TestStoreSet:
    def test_bypasses_until_trained(self):
        predictor = StoreSetPredictor()
        assert predictor.may_bypass(LOAD, STORE)
        predictor.train(LOAD, STORE)
        assert not predictor.may_bypass(LOAD, STORE)
        assert predictor.violations_trained == 1

    def test_unrelated_pairs_still_bypass(self):
        predictor = StoreSetPredictor()
        predictor.train(LOAD, STORE)
        assert predictor.may_bypass(LOAD, OTHER_STORE)
        assert predictor.may_bypass(OTHER_LOAD, STORE)

    def test_sets_merge_transitively(self):
        predictor = StoreSetPredictor()
        predictor.train(LOAD, STORE)
        predictor.train(LOAD, OTHER_STORE)
        # both stores now share the load's set: the load waits for both
        assert not predictor.may_bypass(LOAD, STORE)
        assert not predictor.may_bypass(LOAD, OTHER_STORE)

    def test_repeated_training_is_stable(self):
        predictor = StoreSetPredictor()
        for _ in range(5):
            predictor.train(LOAD, STORE)
        assert predictor.violations_trained == 5
        assert not predictor.may_bypass(LOAD, STORE)


class TestRegistry:
    @pytest.mark.parametrize("name,cls", [
        ("always", AlwaysSpeculate),
        ("never", NeverSpeculate),
        ("store-set", StoreSetPredictor),
    ])
    def test_make_predictor(self, name, cls):
        predictor = make_predictor(name)
        assert isinstance(predictor, cls)
        assert predictor.name == name

    def test_oracle_placeholder_never_bypasses(self):
        # the simulator special-cases the oracle; the placeholder object
        # must at least be safe (never bypass) if consulted anyway
        assert not make_predictor("oracle").may_bypass(LOAD, STORE)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("magic8ball")


class TestRegistrationApi:
    def test_builtin_names_in_registration_order(self):
        from repro.hwsim.predictor import predictor_names
        assert predictor_names() == ("always", "never", "store-set",
                                     "oracle")

    def test_register_and_instantiate_custom(self):
        from repro.hwsim.predictor import (_PREDICTORS, make_predictor,
                                           register_predictor)

        class Paranoid(NeverSpeculate):
            name = "paranoid"

        register_predictor("paranoid", Paranoid)
        try:
            assert isinstance(make_predictor("paranoid"), Paranoid)
        finally:
            _PREDICTORS.pop("paranoid")
        with pytest.raises(ValueError, match="unknown predictor"):
            make_predictor("paranoid")

    def test_registration_last_wins(self):
        from repro.hwsim.predictor import (make_predictor,
                                           register_predictor)
        register_predictor("always", AlwaysSpeculate)  # re-register
        assert isinstance(make_predictor("always"), AlwaysSpeculate)
