"""Integration tests for :class:`repro.hwsim.HwSimulator`.

These exercise the three-pass tree execution (resolve, time, commit) on
the canonical conftest programs and check that the coupled functional
model agrees with the plain interpreter under every predictor.
"""

import pytest

from repro import obs
from repro.hwsim import HwSimulator, simulate_program
from repro.machine import HW_ORACLE_INFINITE, hw_machine
from repro.sim import run_program

PREDICTORS = ("always", "never", "store-set", "oracle")


def _mach(predictor="store-set", fus=2):
    return hw_machine(fus, predictor=predictor, window=8)


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("predictor", PREDICTORS)
    def test_example22_matches_interpreter(self, example22_program,
                                           example22_result, predictor):
        result = simulate_program(example22_program.copy(),
                                  _mach(predictor))
        assert example22_result.output_equal(result)
        assert example22_result.return_value == result.return_value

    @pytest.mark.parametrize("predictor", PREDICTORS)
    def test_pointer_kernel_matches_interpreter(self, pointer_program,
                                                predictor):
        reference = run_program(pointer_program.copy())
        result = simulate_program(pointer_program.copy(), _mach(predictor))
        assert reference.output_equal(result)

    def test_final_memory_matches_interpreter(self, example22_program):
        from repro.sim.interpreter import Interpreter
        reference = Interpreter(example22_program.copy())
        reference.run()
        sim = HwSimulator(example22_program.copy(), _mach("always"))
        sim.run()
        assert sim.memory == reference.memory


class TestCounters:
    def test_example22_speculation_story(self, example22_program):
        """Example 2-2 aliases on exactly one iteration, so ``always``
        squashes a handful of loads, ``never`` squashes none, and the
        store-set predictor converges after training."""
        runs = {}
        for predictor in PREDICTORS:
            sim = HwSimulator(example22_program.copy(), _mach(predictor))
            sim.run()
            runs[predictor] = sim
        assert runs["always"].stats.squashes > 0
        assert runs["never"].stats.squashes == 0
        assert runs["never"].stats.spec_issues == 0
        assert runs["oracle"].stats.squashes == 0
        # the oracle still speculates (that is the point)
        assert runs["oracle"].stats.spec_issues > 0
        # store-set: squashes once per learned pair, then behaves
        assert 0 < runs["store-set"].stats.squashes
        assert (runs["store-set"].stats.squashes
                <= runs["always"].stats.squashes)

    def test_cycle_ordering(self, example22_program):
        cycles = {}
        for predictor in PREDICTORS:
            cycles[predictor] = simulate_program(
                example22_program.copy(), _mach(predictor)).cycles
        # an oracle never waits needlessly and never squashes
        assert cycles["oracle"] <= min(cycles["never"], cycles["always"])
        # trained store-set lands between blind policies on this input
        assert cycles["oracle"] <= cycles["store-set"] <= cycles["never"]

    def test_memoisation_kicks_in_on_loops(self, example22_program):
        sim = HwSimulator(example22_program.copy(), _mach("never"))
        sim.run()
        # 100 loop iterations over a handful of distinct trees
        assert sim.stats.memo_hits > sim.stats.memo_misses
        assert (sim.stats.tree_executions
                == sim.stats.memo_hits + sim.stats.memo_misses)

    def test_timing_payload_is_self_describing(self, example22_program):
        mach = _mach("store-set")
        result = simulate_program(example22_program.copy(), mach)
        timing = result.timing
        assert timing.machine_name == mach.name
        assert timing.predictor == "store-set"
        assert timing.cycles == result.cycles
        payload = timing.to_dict()
        assert payload["cycles"] == result.cycles
        assert payload["squashes"] == timing.stats["squashes"]
        assert payload["machine"] == mach.name


class TestObservability:
    def test_run_emits_metrics(self, example22_program):
        with obs.tracing() as tracer:
            simulate_program(example22_program.copy(), _mach("always"))
        counters = tracer.metrics.counters
        assert counters["hwsim.cycles"] > 0
        assert counters["hwsim.tree_executions"] > 0
        assert counters["hwsim.squashes"] > 0
        assert counters["hwsim.memo_hits"] > 0


class TestLimits:
    def test_max_steps_enforced(self, example22_program):
        sim = HwSimulator(example22_program.copy(), _mach("never"),
                          max_steps=10)
        with pytest.raises(Exception):
            sim.run()

    def test_infinite_machine_is_program_lower_bound(self,
                                                     example22_program):
        bound = simulate_program(example22_program.copy(),
                                 HW_ORACLE_INFINITE).cycles
        for predictor in PREDICTORS:
            cycles = simulate_program(example22_program.copy(),
                                      _mach(predictor)).cycles
            assert cycles >= bound, predictor
