"""The compiled resolve/commit fast path and the bounded timing memo.

``use_jit=False`` keeps the original op-dispatch passes; these tests
diff the two implementations on every observable — they must be
indistinguishable except for wall time.
"""

import dataclasses

import pytest

from repro import obs
from repro.hwsim import HwSimulator
from repro.machine.hw import HwMachine, hw_machine

PREDICTORS = ("always", "never", "store-set", "oracle")


def _mach(predictor="store-set", fus=2, **kwargs):
    return dataclasses.replace(
        hw_machine(fus, predictor=predictor, window=8), **kwargs)


def _simulate(program, mach, use_jit):
    sim = HwSimulator(program.copy(), mach, trace_stores=True,
                      use_jit=use_jit)
    result = sim.run()
    return sim, result


class TestFastPathEquivalence:
    @pytest.mark.parametrize("predictor", PREDICTORS)
    def test_example22_identical_to_slow_path(self, example22_program,
                                              predictor):
        mach = _mach(predictor)
        slow, slow_result = _simulate(example22_program, mach, use_jit=False)
        fast, fast_result = _simulate(example22_program, mach, use_jit=True)
        assert fast.output == slow.output
        assert fast_result.return_value == slow_result.return_value
        assert fast_result.steps == slow_result.steps
        assert fast.cycles == slow.cycles
        assert fast.memory == slow.memory
        assert fast.store_trace == slow.store_trace
        assert fast.stats.to_dict() == slow.stats.to_dict()

    @pytest.mark.parametrize("predictor", PREDICTORS)
    def test_pointer_kernel_identical_to_slow_path(self, pointer_program,
                                                   predictor):
        mach = _mach(predictor)
        slow, _ = _simulate(pointer_program, mach, use_jit=False)
        fast, _ = _simulate(pointer_program, mach, use_jit=True)
        assert fast.output == slow.output
        assert fast.cycles == slow.cycles
        assert fast.memory == slow.memory
        assert fast.stats.to_dict() == slow.stats.to_dict()

    def test_paths_share_memo_shape(self, example22_program):
        """Compiled resolve emits plain tuples that hash like the slow
        path's MemEvent records, so both modes produce identical memo
        behaviour (hits, misses, evictions)."""
        mach = _mach("store-set")
        slow, _ = _simulate(example22_program, mach, use_jit=False)
        fast, _ = _simulate(example22_program, mach, use_jit=True)
        assert fast.stats.memo_hits == slow.stats.memo_hits
        assert fast.stats.memo_misses == slow.stats.memo_misses
        assert fast.stats.memo_evictions == slow.stats.memo_evictions


class TestMemoBound:
    def test_capacity_one_evicts_without_changing_cycles(
            self, example22_program):
        unbounded = _mach("never", memo_capacity=None)
        tiny = _mach("never", memo_capacity=1)
        ref_sim, _ = _simulate(example22_program, unbounded, use_jit=True)
        tiny_sim, _ = _simulate(example22_program, tiny, use_jit=True)
        assert ref_sim.stats.memo_evictions == 0
        assert tiny_sim.stats.memo_evictions > 0
        # eviction costs recomputation, never cycles
        assert tiny_sim.cycles == ref_sim.cycles
        assert tiny_sim.output == ref_sim.output
        assert tiny_sim.stats.squashes == ref_sim.stats.squashes

    def test_default_capacity_needs_no_evictions(self, example22_program):
        sim, _ = _simulate(example22_program, _mach("never"), use_jit=True)
        assert sim.stats.memo_evictions == 0
        assert sim.stats.memo_hits > 0

    def test_capacity_excluded_from_identity(self):
        a = _mach("store-set", memo_capacity=None)
        b = _mach("store-set", memo_capacity=1)
        assert a.name == b.name
        assert a.to_dict() == b.to_dict()

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="memo_capacity"):
            HwMachine(memo_capacity=0)
        HwMachine(memo_capacity=None)  # unbounded is fine
        HwMachine(memo_capacity=1)


class TestMemoObservability:
    def test_memo_counters_emitted(self, example22_program):
        with obs.tracing() as tracer:
            sim, _ = _simulate(example22_program,
                               _mach("never", memo_capacity=1), use_jit=True)
        counters = tracer.metrics.counters
        assert counters["hwsim.memo.hits"] == sim.stats.memo_hits > 0
        assert (counters["hwsim.memo.evictions"]
                == sim.stats.memo_evictions > 0)
        # legacy counter names remain
        assert counters["hwsim.memo_hits"] == sim.stats.memo_hits
