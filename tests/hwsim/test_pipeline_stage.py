"""The ``hwtime`` pipeline stage: caching, fingerprints, parallel jobs.

Mirrors ``tests/pipeline/test_pipeline.py`` for the hardware-simulation
stage added alongside the static-schedule ``timing`` stage.
"""

import pytest

from repro import obs
from repro.disambig.pipeline import Disambiguator
from repro.machine import HwMachine, hw_machine
from repro.pipeline.core import Pipeline
from repro.pipeline.executor import HwTimingJob, run_jobs
from repro.pipeline.store import ArtifactStore

SOURCE = """
float a[300];
float y[300];

int main() {
    int i;
    for (i = 1; i <= 100; i = i + 1) {
        a[2*i] = i * 1.0;
        y[i] = a[i+4] * 2.0 + 1.0;
    }
    print(y[3]);
    print(y[50]);
    return 0;
}
"""

MACH = hw_machine(2, predictor="store-set", window=8)


class TestCachedStage:
    def test_disk_round_trip_equals_in_memory(self, tmp_path):
        cold = Pipeline(store=ArtifactStore(tmp_path))
        first = cold.hw_timing("ex", SOURCE, Disambiguator.SPEC, MACH)
        warm = Pipeline(store=ArtifactStore(tmp_path))
        with obs.tracing() as tracer:
            second = warm.hw_timing("ex", SOURCE, Disambiguator.SPEC, MACH)
        counters = tracer.metrics.counters
        assert counters.get("pipeline.cache_hits.disk", 0) == 1
        assert counters.get("pipeline.cache_misses", 0) == 0
        assert second.fingerprint == first.fingerprint
        assert second.cycles == first.cycles
        assert second.timing == first.timing

    def test_memory_hit_on_same_pipeline(self, tmp_path):
        pipe = Pipeline(store=ArtifactStore(tmp_path))
        pipe.hw_timing("ex", SOURCE, Disambiguator.NAIVE, MACH)
        with obs.tracing() as tracer:
            pipe.hw_timing("ex", SOURCE, Disambiguator.NAIVE, MACH)
        assert tracer.metrics.counters["pipeline.cache_hits.mem"] == 1


class TestFingerprints:
    def _fp(self, pipe, mach, kind=Disambiguator.SPEC):
        return pipe.hw_timing_fingerprint(SOURCE, kind, mach)

    def test_every_machine_knob_is_load_bearing(self, tmp_path):
        pipe = Pipeline(store=ArtifactStore(tmp_path))
        base = self._fp(pipe, MACH)
        variants = [
            hw_machine(4, predictor="store-set", window=8),
            hw_machine(2, predictor="always", window=8),
            hw_machine(2, predictor="store-set", window=16),
            hw_machine(2, predictor="store-set", window=8,
                       replay_penalty=7),
            hw_machine(2, predictor="store-set", window=8,
                       memory_latency=6),
        ]
        fps = [self._fp(pipe, mach) for mach in variants]
        assert base not in fps
        assert len(set(fps)) == len(fps)

    def test_view_kind_is_load_bearing(self, tmp_path):
        pipe = Pipeline(store=ArtifactStore(tmp_path))
        assert (self._fp(pipe, MACH, Disambiguator.SPEC)
                != self._fp(pipe, MACH, Disambiguator.NAIVE))

    def test_distinct_from_static_timing_stage(self, tmp_path):
        from repro.machine.description import machine
        pipe = Pipeline(store=ArtifactStore(tmp_path))
        static = pipe.timing_fingerprint(SOURCE, Disambiguator.SPEC,
                                         machine(5, 2))
        assert self._fp(pipe, MACH) != static


class TestParallelJobs:
    def _jobs(self):
        return [
            HwTimingJob("ex", SOURCE, kind, mach)
            for kind in (Disambiguator.NAIVE, Disambiguator.SPEC)
            for mach in (hw_machine(1, window=8), MACH)
        ]

    def test_serial_executor(self, tmp_path):
        pipe = Pipeline(store=ArtifactStore(tmp_path))
        results = run_jobs(pipe, self._jobs(), 1)
        assert len(results) == 4
        assert all(r.cycles > 0 for r in results)

    @pytest.mark.slow
    def test_parallel_matches_serial(self, tmp_path):
        """jobs=4 must be indistinguishable from jobs=1 — same cycles,
        same squash counts, same fingerprints."""
        serial = run_jobs(Pipeline(store=ArtifactStore(tmp_path / "a")),
                          self._jobs(), 1)
        parallel = run_jobs(Pipeline(store=ArtifactStore(tmp_path / "b")),
                            self._jobs(), 4)
        for left, right in zip(serial, parallel):
            assert left.fingerprint == right.fingerprint
            assert left.cycles == right.cycles
            assert left.timing == right.timing


class TestDivergenceGuard:
    def test_functional_divergence_raises(self, tmp_path, monkeypatch):
        """If the simulator ever disagrees with the interpreter, the
        stage must fail loudly rather than cache a wrong cycle count."""
        import repro.pipeline.core as core

        class _Liar:
            cycles = 1
            timing = None
            output = ("not", "the", "real", "output")

        monkeypatch.setattr(core, "simulate_program",
                            lambda program, mach: _Liar())
        pipe = Pipeline(store=ArtifactStore(tmp_path))
        with pytest.raises(AssertionError, match="diverged"):
            pipe.hw_timing("ex", SOURCE, Disambiguator.NAIVE, MACH)
