"""CLI surface tests: repro corpus build/verify/stats, repro bench --corpus."""

import json

import pytest

from repro.cli import _DEFAULT_CORPUS_MANIFEST, main
from repro.corpus import DEFAULT_MANIFEST_PATH, load_manifest


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    """One CLI-built manifest shared by the module's tests."""
    path = tmp_path_factory.mktemp("corpus-cli") / "manifest.json"
    status = main(["corpus", "build", "--out", str(path),
                   "--target-size", "20", "--per-config", "4",
                   "--smoke-size", "6"])
    assert status == 0
    return path


def test_default_manifest_paths_agree():
    assert str(_DEFAULT_CORPUS_MANIFEST) == str(DEFAULT_MANIFEST_PATH)


def test_build_then_verify_and_stats(built, capsys, tmp_path):
    manifest = load_manifest(built)
    count = len(manifest["entries"])
    # coverage beats the head count: >= target, and one per stratum
    assert count >= 20
    assert main(["corpus", "verify", "--manifest", str(built)]) == 0
    assert main(["corpus", "verify", "--manifest", str(built),
                 "--full"]) == 0
    capsys.readouterr()
    assert main(["corpus", "stats", "--manifest", str(built)]) == 0
    out = capsys.readouterr().out
    assert f"{count} entries" in out and "stratum" in out
    stats_json = tmp_path / "stats.json"
    assert main(["corpus", "stats", "--manifest", str(built),
                 "--json", str(stats_json)]) == 0
    stats = json.loads(stats_json.read_text())
    assert stats["entries"] == count


def test_verify_fails_on_tampered_manifest(built, tmp_path):
    manifest = load_manifest(built)
    manifest["entries"][0]["seed"] += 1
    tampered = tmp_path / "tampered.json"
    tampered.write_text(json.dumps(manifest))
    assert main(["corpus", "verify", "--manifest", str(tampered)]) == 1


def test_corpus_commands_report_missing_manifest(tmp_path):
    missing = str(tmp_path / "nope.json")
    assert main(["corpus", "verify", "--manifest", missing]) == 2
    assert main(["corpus", "stats", "--manifest", missing]) == 2


def test_bench_corpus_smoke_stable_json(built, tmp_path):
    out = tmp_path / "BENCH_corpus.json"
    status = main(["bench", "--corpus", str(built), "--stratum", "smoke",
                   "--stable", "--json", str(out)])
    assert status == 0
    payload = json.loads(out.read_text())
    assert payload["schema"] == "repro.bench_corpus/1"
    assert payload["lab"] is None
    assert payload["manifest"]["path"] == str(built)
    assert payload["selection"]["programs"] == 6


def test_bench_corpus_records_history(built, tmp_path):
    history = tmp_path / "history.jsonl"
    status = main(["bench", "--corpus", str(built), "--stratum", "smoke",
                   "--record", str(history)])
    assert status == 0
    record = json.loads(history.read_text().splitlines()[-1])
    assert record["schema"] == "repro.perf_history/1"
    assert "corpus:smoke" in record["benchmarks"]
    jsonschema = pytest.importorskip("jsonschema")
    from pathlib import Path
    schema = json.loads(
        (Path(__file__).parent.parent / "schemas"
         / "perf_history.schema.json").read_text())
    jsonschema.Draft7Validator(schema).validate(record)


def test_bench_corpus_record_needs_finite_machine(built, tmp_path):
    status = main(["bench", "--corpus", str(built), "--stratum", "smoke",
                   "--fus", "0", "--record", str(tmp_path / "h.jsonl")])
    assert status == 2


def test_bench_argument_errors(built, tmp_path, capsys):
    assert main(["bench"]) == 2
    assert "benchmark name required" in capsys.readouterr().err
    assert main(["bench", "perm", "--corpus", str(built)]) == 2
    assert "not both" in capsys.readouterr().err
    assert main(["bench", "--corpus", str(tmp_path / "nope.json")]) == 2
    assert main(["bench", "--corpus", str(built),
                 "--stratum", "xl-wat"]) == 2
    assert "matches no corpus entry" in capsys.readouterr().err
