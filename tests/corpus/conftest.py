"""Shared fixtures: one small curated manifest per test session.

Building a manifest measures (generate + parse + compile) every grid
candidate, so the corpus tests share a single session-scoped build of
a deliberately tiny spec — same code path as the committed ~1000-entry
manifest, two orders of magnitude less work.
"""

import pytest

from repro.corpus import BuildSpec, build_manifest

TINY_SPEC = BuildSpec(target_size=24, per_config=6, smoke_size=8)


@pytest.fixture(scope="session")
def tiny_spec():
    return TINY_SPEC


@pytest.fixture(scope="session")
def tiny_manifest(tiny_spec):
    return build_manifest(tiny_spec)
