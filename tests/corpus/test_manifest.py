"""Curator tests: deterministic builds, sound selection, honest verify."""

import json
import random

import pytest

from repro.corpus.manifest import (CONFIG_TIERS, CORPUS_SCHEMA, BuildSpec,
                                   Candidate, build_manifest, entry_source,
                                   load_manifest, manifest_stats, mark_smoke,
                                   select_bench_entries, select_entries,
                                   verify_manifest, write_manifest)
from repro.fuzz.generator import (GeneratorConfig, config_from_dict,
                                  config_to_dict)


def test_build_is_deterministic(tiny_spec, tiny_manifest):
    again = build_manifest(tiny_spec)
    assert (json.dumps(again, sort_keys=True)
            == json.dumps(tiny_manifest, sort_keys=True))


@pytest.mark.slow
def test_parallel_build_matches_serial(tiny_spec, tiny_manifest):
    parallel = build_manifest(tiny_spec, jobs=2)
    assert (json.dumps(parallel, sort_keys=True)
            == json.dumps(tiny_manifest, sort_keys=True))


def test_manifest_shape(tiny_spec, tiny_manifest):
    assert tiny_manifest["schema"] == CORPUS_SCHEMA
    entries = tiny_manifest["entries"]
    assert len(entries) == tiny_spec.target_size
    assert sum(1 for e in entries if e["smoke"]) == tiny_spec.smoke_size
    assert len({e["id"] for e in entries}) == len(entries)
    for entry in entries:
        assert set(entry) == {"id", "config", "seed", "stratum", "smoke",
                              "fingerprint", "ops", "features"}
        assert entry["config"] in tiny_manifest["configs"]
        assert entry["ops"] > 0
    # the recorded strata summary matches the entries
    strata = {}
    for entry in entries:
        strata[entry["stratum"]] = strata.get(entry["stratum"], 0) + 1
    assert strata == tiny_manifest["strata"]


def test_entries_regenerate_and_verify_clean(tiny_manifest):
    assert verify_manifest(tiny_manifest) == []
    assert verify_manifest(tiny_manifest, full=True) == []


def test_verify_catches_fingerprint_drift(tiny_manifest):
    tampered = json.loads(json.dumps(tiny_manifest))
    tampered["entries"][0]["fingerprint"] = "0" * 64
    problems = verify_manifest(tampered)
    assert any("fingerprint mismatch" in p for p in problems)


def test_verify_catches_stratum_and_ops_drift(tiny_manifest):
    tampered = json.loads(json.dumps(tiny_manifest))
    victim = tampered["entries"][0]
    victim["ops"] += 1
    problems = verify_manifest(tampered, full=True)
    assert any("ops" in p and victim["id"] in p for p in problems)


def test_verify_catches_duplicate_ids_and_bad_summary(tiny_manifest):
    tampered = json.loads(json.dumps(tiny_manifest))
    tampered["entries"][1] = json.loads(
        json.dumps(tampered["entries"][0]))
    problems = verify_manifest(tampered)
    assert any("duplicate id" in p for p in problems)
    assert any("strata summary" in p for p in problems)


def test_verify_catches_generator_version_drift(tiny_manifest):
    tampered = json.loads(json.dumps(tiny_manifest))
    tampered["generator_version"] += 1
    problems = verify_manifest(tampered)
    assert any("generator_version" in p for p in problems)


def test_roundtrip_write_load(tiny_manifest, tmp_path):
    path = tmp_path / "manifest.json"
    write_manifest(path, tiny_manifest)
    assert load_manifest(path) == tiny_manifest


def test_load_rejects_foreign_payloads(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"schema": "repro.bench_spd/3",
                                "entries": []}))
    with pytest.raises(ValueError, match="schema"):
        load_manifest(path)
    path.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError, match="not a corpus manifest"):
        load_manifest(path)


def test_unknown_config_tier_rejected():
    with pytest.raises(ValueError, match="unknown config tier"):
        BuildSpec(configs=("nope",)).config_names()


def test_config_roundtrips_through_manifest_params():
    for name, config in CONFIG_TIERS.items():
        params = config_to_dict(config)
        assert config_from_dict(params) == config, name
    with pytest.raises(ValueError, match="unknown generator parameter"):
        config_from_dict({"array_size": 16, "warp_drive": True})


# -- selection -------------------------------------------------------------

def _fake_candidates(count=40, strata=("a", "b", "c", "d")):
    rng = random.Random(7)
    return [Candidate(id=f"c:{i:03d}", config="s-lo", seed=i,
                      fingerprint=f"{i:064x}", ops=rng.randrange(40, 400),
                      features={}, stratum=strata[i % len(strata)])
            for i in range(count)]


def test_selection_covers_every_stratum():
    candidates = _fake_candidates()
    selected = select_entries(candidates, 10)
    assert len(selected) == 10
    assert ({c.stratum for c in selected}
            == {c.stratum for c in candidates})


def test_selection_is_order_independent():
    candidates = _fake_candidates()
    baseline = select_entries(candidates, 17)
    for seed in range(3):
        shuffled = list(candidates)
        random.Random(seed).shuffle(shuffled)
        assert select_entries(shuffled, 17) == baseline


def test_selection_prefers_small_programs_within_stratum():
    candidates = _fake_candidates()
    selected = select_entries(candidates, 4)  # one per stratum
    by_stratum = {}
    for candidate in candidates:
        bucket = by_stratum.setdefault(candidate.stratum, [])
        bucket.append(candidate)
    for choice in selected:
        smallest = min(by_stratum[choice.stratum],
                       key=lambda c: (c.ops, c.id))
        assert choice == smallest


def test_selection_handles_exhausted_strata():
    candidates = _fake_candidates(count=6)
    assert len(select_entries(candidates, 100)) == 6
    assert select_entries([], 10) == []
    assert select_entries(candidates, 0) == []


def test_smoke_marking_round_robins_strata():
    candidates = _fake_candidates()
    smoke = mark_smoke(candidates, 4)
    chosen = [c for c in candidates if c.id in set(smoke)]
    assert len(smoke) == 4
    assert {c.stratum for c in chosen} == {"a", "b", "c", "d"}
    assert mark_smoke(candidates, 1000) == sorted(
        c.id for c in candidates)


# -- bench-slice selection -------------------------------------------------

def test_select_bench_entries_slices(tiny_manifest):
    everything = select_bench_entries(tiny_manifest, None)
    assert everything == tiny_manifest["entries"]
    smoke = select_bench_entries(tiny_manifest, "smoke")
    assert smoke and all(entry["smoke"] for entry in smoke)
    stratum = tiny_manifest["entries"][0]["stratum"]
    one = select_bench_entries(tiny_manifest, stratum)
    assert one and all(entry["stratum"] == stratum for entry in one)
    with pytest.raises(ValueError, match="matches no corpus entry"):
        select_bench_entries(tiny_manifest, "xl-wat-loop-d9")


def test_manifest_stats_summarises(tiny_spec, tiny_manifest):
    stats = manifest_stats(tiny_manifest)
    assert stats["entries"] == tiny_spec.target_size
    assert stats["smoke_entries"] == tiny_spec.smoke_size
    assert sum(b["programs"] for b in stats["strata"].values()) \
        == stats["entries"]
    for bucket in stats["strata"].values():
        assert bucket["ops_min"] <= bucket["ops_median"] <= bucket["ops_max"]


def test_entry_sources_differ_across_entries(tiny_manifest):
    sources = {entry_source(tiny_manifest, entry)
               for entry in tiny_manifest["entries"][:6]}
    assert len(sources) == 6


def test_generator_config_defaults_pin():
    """CONFIG_TIERS is part of the committed manifest's meaning: a field
    drifting silently would orphan every committed seed.  (The
    fingerprints in the manifest catch this too — this is the fast,
    local pin.)"""
    small = CONFIG_TIERS["s-lo"]
    assert isinstance(small, GeneratorConfig)
    assert not small.enable_matrix and not small.enable_while
    assert CONFIG_TIERS["x-hi"].max_toplevel_stmts == 24
    assert {name.split("-")[1] for name in CONFIG_TIERS} == {"lo", "hi"}
