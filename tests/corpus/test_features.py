"""Unit tests for shape-feature extraction and stratum classification."""

import pytest

from repro.corpus.features import (ALIAS_EDGE, SIZE_EDGES, ShapeFeatures,
                                   alias_class, all_axis_values,
                                   compiled_ops, control_class,
                                   diamond_class, extract_features,
                                   features_of_unit, size_class, stratum_of)
from repro.frontend.parser import parse


def program(body: str) -> str:
    return ("int ga[16];\nint gb[16];\n"
            "int main() {\n" + body + "\nreturn 0;\n}\n")


def test_counts_loads_stores_and_calls():
    features = extract_features(
        "int ga[16];\n"
        "int bump(int a) { return a + 1; }\n"
        "int main() {\n"
        "int x = ga[0];\n"            # 1 load
        "ga[1] = ga[2] + bump(x);\n"  # 1 store, 1 load, 1 call
        "return x;\n"
        "}\n")
    assert features.loads == 2
    assert features.stores == 1
    assert features.calls == 1
    assert features.mem_refs == 3
    assert features.nodes > 0
    assert 0.0 < features.alias_density < 1.0


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_loop_nesting_measures_exact_depth(depth):
    body = ""
    for level in range(depth):
        body += (f"int i{level};\n"
                 f"for (i{level} = 0; i{level} < 2; "
                 f"i{level} = i{level} + 1) {{\n")
    body += "ga[0] = ga[1] + 1;\n" + "}\n" * depth
    assert extract_features(program(body)).loop_nesting == depth


@pytest.mark.parametrize("depth", [1, 2, 3])
def test_diamond_depth_measures_exact_if_nesting(depth):
    body = ""
    for level in range(depth):
        body += f"if (ga[{level}] > 0) {{\n"
    body += "ga[0] = 1;\n" + "}\n" * depth
    assert extract_features(program(body)).diamond_depth == depth


def test_features_stable_under_reparse():
    source = program("ga[0] = ga[1] + 1;\n"
                     "if (ga[2] > 0) { gb[0] = 2; }\n")
    direct = extract_features(source)
    assert direct == extract_features(source)
    assert direct == features_of_unit(parse(source))


def test_formatting_does_not_change_features():
    dense = program("ga[0] = ga[1] + 1;")
    spaced = program("ga[ 0 ]   =\n  ga[ 1 ] + 1   ;\n\n")
    assert extract_features(dense) == extract_features(spaced)


def test_compiled_ops_positive_and_size_monotone():
    small = program("ga[0] = 1;")
    bigger = program("ga[0] = 1;\nga[1] = 2;\nga[2] = 3;\ngb[0] = ga[0];")
    assert 0 < compiled_ops(small) < compiled_ops(bigger)


def test_size_class_edges():
    assert size_class(SIZE_EDGES[0] - 1) == "xs"
    assert size_class(SIZE_EDGES[0]) == "sm"
    assert size_class(SIZE_EDGES[1]) == "md"
    assert size_class(SIZE_EDGES[2]) == "lg"
    assert size_class(10 * SIZE_EDGES[2]) == "lg"


def test_alias_and_control_and_diamond_classes():
    assert alias_class(ALIAS_EDGE - 1e-9) == "lo"
    assert alias_class(ALIAS_EDGE) == "hi"
    assert [control_class(k) for k in (0, 1, 2, 3, 4)] == \
        ["loop", "loop", "nest", "deep", "deep"]
    assert [diamond_class(k) for k in (0, 1, 2, 3)] == \
        ["d1", "d1", "d2", "d2"]


def test_stratum_of_joins_all_four_axes():
    features = ShapeFeatures(nodes=100, loads=5, stores=5, calls=0,
                             diamond_depth=2, loop_nesting=1)
    name = stratum_of(features, ops=150)
    size, alias, control, diamond = name.split("-")
    axes = all_axis_values()
    assert size in axes["size"]
    assert alias in axes["alias"]
    assert control in axes["control"]
    assert diamond in axes["diamond"]
    assert name == "sm-hi-loop-d2"
