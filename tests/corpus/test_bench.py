"""Corpus bench engine tests: aggregates, determinism, hw sampling."""

import json

import pytest

from repro.corpus import (BENCH_CORPUS_SCHEMA, history_benchmarks,
                          run_corpus_bench)
from repro.machine.description import machine
from repro.machine.hw import hw_machine
from repro.pipeline.core import Pipeline
from repro.pipeline.store import ArtifactStore

MACH = machine(5, 6)


@pytest.fixture(scope="module")
def smoke_payload(tiny_manifest, tmp_path_factory):
    # a private cold store so the cache counters asserted below do not
    # depend on what other test modules already computed
    store = ArtifactStore(tmp_path_factory.mktemp("corpus-bench-cache"))
    return run_corpus_bench(Pipeline(store=store), tiny_manifest, MACH,
                            stratum="smoke", jobs=1)


def test_payload_shape(tiny_manifest, smoke_payload):
    payload = smoke_payload
    assert payload["schema"] == BENCH_CORPUS_SCHEMA
    assert payload["manifest"]["entries"] == len(tiny_manifest["entries"])
    selection = payload["selection"]
    smoke = [e for e in tiny_manifest["entries"] if e["smoke"]]
    assert selection["programs"] == len(smoke)
    assert selection["jobs_submitted"] == 3 * len(smoke)
    assert selection["hw_sampled"] == 0
    totals = payload["totals"]
    assert totals["programs"] == selection["programs"]
    assert (sum(s["programs"] for s in payload["strata"].values())
            == totals["programs"])
    assert totals["cycles"]["naive"] > 0
    assert totals["cycles"]["spec"] > 0
    assert totals["geomean_speedup_spec_over_naive"] > 0
    assert totals["code_growth_mean"] >= 1.0
    rate = totals["spd"]["application_rate"]
    assert 0.0 <= rate <= 1.0
    assert totals["spd"]["programs_applied"] <= totals["programs"]


def test_lab_telemetry_present_by_default(smoke_payload):
    lab = smoke_payload["lab"]
    assert lab is not None
    assert lab["elapsed_s"] >= 0
    assert set(lab["cache"]) == {"hits_mem", "hits_disk", "misses",
                                 "shard_evictions"}
    # a fresh hermetic cache: every stage was computed at least once
    assert lab["cache"]["misses"] > 0
    assert "pipeline.timing" in lab["wall_ms"]
    assert lab["wall_ms"]["pipeline.timing"]["count"] >= \
        smoke_payload["selection"]["programs"]


def test_stable_strips_lab_and_blocks_history(tiny_manifest):
    payload = run_corpus_bench(Pipeline(), tiny_manifest, MACH,
                               stratum="smoke", jobs=1, stable=True)
    assert payload["lab"] is None
    with pytest.raises(ValueError, match="stable"):
        history_benchmarks(payload)


def test_stable_payload_is_rerun_identical(tiny_manifest, smoke_payload):
    stable = run_corpus_bench(Pipeline(), tiny_manifest, MACH,
                              stratum="smoke", jobs=1, stable=True)
    expected = dict(smoke_payload, lab=None)
    assert (json.dumps(stable, sort_keys=True)
            == json.dumps(expected, sort_keys=True))


@pytest.mark.slow
def test_jobs_parallel_matches_serial_byte_identical(tiny_manifest,
                                                     tmp_path):
    """The acceptance-gate determinism contract: ``--jobs 4`` and
    ``--jobs 1`` produce byte-identical stable JSON, each from its own
    cold cache."""
    runs = {}
    for jobs in (1, 4):
        store = ArtifactStore(tmp_path / f"cache{jobs}")
        payload = run_corpus_bench(Pipeline(store=store), tiny_manifest,
                                   MACH, stratum="smoke", jobs=jobs,
                                   stable=True)
        runs[jobs] = json.dumps(payload, indent=2, sort_keys=True)
    assert runs[1] == runs[4]


@pytest.mark.slow
def test_hw_sampling_adds_hw_aggregates(tiny_manifest):
    payload = run_corpus_bench(
        Pipeline(), tiny_manifest, MACH, stratum="smoke", jobs=1,
        hw_machine=hw_machine(4, 6), hw_sample=1, stable=True)
    assert payload["selection"]["hw_sampled"] == len(payload["strata"])
    totals_hw = payload["totals"]["hw"]
    assert totals_hw["programs"] == payload["selection"]["hw_sampled"]
    assert totals_hw["cycles_spec"] > 0
    assert (sum(s["hw"]["programs"] for s in payload["strata"].values())
            == totals_hw["programs"])


def test_history_benchmarks_record_shape(smoke_payload):
    benchmarks = history_benchmarks(smoke_payload)
    assert list(benchmarks) == ["corpus:smoke"]
    entry = benchmarks["corpus:smoke"]
    assert set(entry["wall_ms"]) == {"compile_profile", "disambiguate",
                                     "timing", "total", "warm_total"}
    assert entry["wall_ms"]["total"] > 0
    assert (entry["counters"]["corpus.programs"]
            == smoke_payload["selection"]["programs"])


def test_history_record_is_schema_valid(smoke_payload):
    jsonschema = pytest.importorskip("jsonschema")
    from pathlib import Path

    from repro.perf.history import make_record
    schema = json.loads(
        (Path(__file__).parent.parent / "schemas"
         / "perf_history.schema.json").read_text())
    record = make_record(MACH.name, MACH.num_fus, MACH.latencies.memory,
                         history_benchmarks(smoke_payload))
    jsonschema.Draft7Validator(schema).validate(record)


def test_unknown_stratum_raises(tiny_manifest):
    with pytest.raises(ValueError, match="matches no corpus entry"):
        run_corpus_bench(Pipeline(), tiny_manifest, MACH,
                         stratum="nope", jobs=1)
