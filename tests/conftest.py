"""Shared fixtures: canonical programs, trees, and a session-wide runner."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.runner import BenchmarkRunner
from repro.frontend import compile_source
from repro.ir import (ArrayDecl, Function, Opcode, Program,
                      TreeBuilder, validate_program)
from repro.sim import run_program

# ---------------------------------------------------------------------------
# tinyc sources used across many tests
# ---------------------------------------------------------------------------

#: Paper Example 2-2: alias probability 0.01 (only iteration i = 4).
EXAMPLE_2_2 = """
float a[300];
float y[300];

int main() {
    int i;
    for (i = 1; i <= 100; i = i + 1) {
        a[2*i] = i * 1.0;
        y[i] = a[i+4] * 2.0 + 1.0;
    }
    print(y[3]);
    print(y[4]);
    print(y[50]);
    return 0;
}
"""

#: Pointer-parameter kernel: the static disambiguator cannot resolve it.
POINTER_KERNEL = """
float buf[64];

void kernel(float a[], float b[], int i, int j) {
    a[i] = b[j] * 2.0 + 1.0;
    b[j] = a[i + 1] + 3.0;
}

int main() {
    int k;
    for (k = 0; k < 10; k = k + 1) {
        buf[k] = k * 1.5;
    }
    kernel(buf, buf, 2, 7);
    kernel(buf, buf, 5, 5);
    for (k = 0; k < 10; k = k + 1) {
        print(buf[k]);
    }
    return 0;
}
"""


@pytest.fixture(scope="session")
def example22_program():
    return compile_source(EXAMPLE_2_2)


@pytest.fixture(scope="session")
def example22_result(example22_program):
    return run_program(example22_program)


@pytest.fixture(scope="session")
def pointer_program():
    return compile_source(POINTER_KERNEL)


@pytest.fixture(scope="session", autouse=True)
def _hermetic_cache(tmp_path_factory):
    """Point the artifact store at a throwaway directory for the session.

    Keeps the suite hermetic: tests never read from or write to the
    user's ``~/.cache/repro-spd``.  An explicitly set ``REPRO_CACHE_DIR``
    (e.g. in CI) is respected.
    """
    if os.environ.get("REPRO_CACHE_DIR") is not None:
        yield
        return
    cache_dir = tmp_path_factory.mktemp("repro-cache")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    try:
        yield
    finally:
        os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture(scope="session")
def runner():
    """One BenchmarkRunner for the whole session (stages are cached)."""
    return BenchmarkRunner()


# ---------------------------------------------------------------------------
# golden files
# ---------------------------------------------------------------------------

def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.txt from the current output "
             "instead of comparing against it")


@pytest.fixture
def golden(request):
    """Compare rendered text against a pinned file in ``tests/golden/``.

    ``golden("table6_1.txt", text)`` asserts byte equality with the
    checked-in file; running pytest with ``--update-golden`` rewrites
    the file instead (review the diff before committing!).
    """
    golden_dir = Path(__file__).parent / "golden"
    update = request.config.getoption("--update-golden")

    def check(filename: str, text: str) -> None:
        path = golden_dir / filename
        if not text.endswith("\n"):
            text += "\n"
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text)
            return
        if not path.exists():
            pytest.fail(
                f"golden file {path} missing — run "
                f"pytest --update-golden to create it")
        expected = path.read_text()
        if text != expected:
            import difflib
            diff = "".join(difflib.unified_diff(
                expected.splitlines(keepends=True),
                text.splitlines(keepends=True),
                fromfile=f"golden/{filename}", tofile="current"))
            pytest.fail(
                f"output drifted from golden/{filename} "
                f"(run pytest --update-golden if intentional):\n{diff}")

    return check


# ---------------------------------------------------------------------------
# hand-built IR helpers
# ---------------------------------------------------------------------------

def build_raw_tree_program(store_index: int, load_index: int,
                           stored=3.5, multiplier=2.0) -> Program:
    """One tree with the paper's Figure 4-4 shape: store a[i]; load a[j];
    a dependent multiply; PRINT of the result."""
    program = Program()
    program.globals_.append(ArrayDecl("a", "float", (16,)))
    function = Function("main")
    builder = TreeBuilder("t0")
    addr_store = builder.value(Opcode.ADD, [store_index, 0])
    addr_load = builder.value(Opcode.ADD, [load_index, 0])
    value = builder.value(Opcode.FADD, [stored, 0.0])
    builder.store(value, addr_store)
    loaded = builder.load(addr_load, "float")
    product = builder.value(Opcode.FMUL, [loaded, multiplier])
    builder.emit(Opcode.PRINT, [product])
    builder.halt()
    function.add_tree(builder.tree)
    program.add_function(function)
    program.layout_memory()
    validate_program(program)
    return program


@pytest.fixture
def raw_tree_program():
    return build_raw_tree_program(3, 3)
