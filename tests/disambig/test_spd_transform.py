"""Unit tests for the SpD code transformation (paper Section 4).

Every test validates *semantic preservation* by executing the tree
before and after the transform, and most check the paper's structural
claims (cost model, critical-path reduction, guard disjointness).
"""

import pytest

from repro.disambig import SpDNotApplicable, apply_spd
from repro.ir import (ArcKind, ArrayDecl, Constant, Function, Guard, Opcode,
                      Program, Register, TreeBuilder, build_dependence_graph,
                      validate_program)
from repro.ir.guard_analysis import GuardAnalysis
from repro.machine import machine
from repro.sim import infinite_machine_timing, run_program

from ..conftest import build_raw_tree_program


def ambiguous_arc(tree, kind=None):
    graph = build_dependence_graph(tree)
    arcs = [a for a in graph.ambiguous_arcs()
            if kind is None or a.kind is kind]
    assert arcs, "expected an ambiguous arc"
    return arcs[0]


def check_semantics_preserved(program, transform):
    """Run before, apply transform to a copy, run after, compare."""
    before = run_program(program.copy())
    transformed = program.copy()
    transform(transformed)
    validate_program(transformed)
    after = run_program(transformed)
    assert before.output_equal(after), (before.output, after.output)
    return transformed


class TestRAW:
    @pytest.mark.parametrize("i,j", [(3, 3), (3, 5), (0, 15)])
    def test_semantics_preserved(self, i, j):
        program = build_raw_tree_program(i, j)

        def transform(p):
            tree = p.functions["main"].trees["t0"]
            apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_RAW))

        check_semantics_preserved(program, transform)

    def test_cost_model(self):
        """Paper Section 4.3: RAW cost is 1 + n_L (compare plus the
        replicated dependence cone) for unguarded base code."""
        program = build_raw_tree_program(2, 4)
        tree = program.functions["main"].trees["t0"]
        size_before = len(tree.ops)
        app = apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_RAW))
        # cone: load + fmul + print -> n_L = 2 replicable ops... the
        # print is a side effect so it is replicated too; the load is
        # substituted away. replicated = |cone| = 3 (load, fmul, print)
        assert app.kind is ArcKind.MEM_RAW
        assert app.ops_added == 1 + (app.replicated - 1)
        assert len(tree.ops) == size_before + app.ops_added

    def test_critical_path_shortened_for_both_outcomes(self):
        """Paper Section 4.3: 'for both the case where the addresses
        alias and the case where they do not, the resulting code will
        always run faster' given enough resources."""
        program = build_raw_tree_program(2, 4)
        tree = program.functions["main"].trees["t0"]
        graph = build_dependence_graph(tree)
        mach = machine(None, 6)
        before = infinite_machine_timing(graph, mach).path_times
        apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_RAW))
        after = infinite_machine_timing(
            build_dependence_graph(tree), mach).path_times
        assert after[0] < before[0]

    def test_arc_resolved_in_rebuilt_graph(self):
        program = build_raw_tree_program(2, 4)
        tree = program.functions["main"].trees["t0"]
        arc = ambiguous_arc(tree, ArcKind.MEM_RAW)
        apply_spd(tree, arc)
        graph = build_dependence_graph(tree)
        assert arc.key not in {a.key for a in graph.ambiguous_arcs()}

    def test_versions_have_disjoint_guards(self):
        program = build_raw_tree_program(2, 4)
        tree = program.functions["main"].trees["t0"]
        apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_RAW))
        prints = [op for op in tree.ops if op.is_print]
        assert len(prints) == 2
        analysis = GuardAnalysis(tree)
        assert analysis.disjoint(prints[0].guard, prints[1].guard)

    def test_compare_reads_both_addresses(self):
        program = build_raw_tree_program(2, 4)
        tree = program.functions["main"].trees["t0"]
        store = next(op for op in tree.ops if op.is_store)
        load = next(op for op in tree.ops if op.is_load)
        app = apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_RAW))
        compare = tree.op_by_id(app.compare_op_id)
        assert compare.opcode is Opcode.CMP_EQ
        assert set(compare.srcs) == {store.address, load.address}

    def test_forwarded_value_redefined_not_applicable(self):
        """If the stored value register is clobbered after the store,
        forwarding would read the wrong value: must refuse."""
        program = Program()
        program.globals_.append(ArrayDecl("a", "float", (8,)))
        f = Function("main")
        b = TreeBuilder("t0")
        v = Register("v.x", "float")
        b.assign(v, 1.5)
        b.store(v, 2)
        b.assign(v, 9.9)            # clobbers the forwarded value
        loaded = b.load(3, "float")
        b.emit(Opcode.PRINT, [loaded])
        b.halt()
        f.add_tree(b.tree)
        program.add_function(f)
        program.layout_memory()
        tree = program.functions["main"].trees["t0"]
        with pytest.raises(SpDNotApplicable):
            apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_RAW))


class TestRAWGuardedStore:
    def build(self, cond_lhs, i, j):
        """Store under an if-conversion guard, then load."""
        program = Program()
        program.globals_.append(ArrayDecl("a", "float", (16,)))
        f = Function("main")
        b = TreeBuilder("t0")
        cond = b.value(Opcode.CMP_LT, [cond_lhs, 5])
        value = b.value(Opcode.FADD, [2.5, 0.0])
        b.store(value, i, guard=Guard(cond))
        loaded = b.load(j, "float")
        out = b.value(Opcode.FMUL, [loaded, 10.0])
        b.emit(Opcode.PRINT, [out])
        b.halt()
        f.add_tree(b.tree)
        program.add_function(f)
        program.layout_memory()
        return program

    @pytest.mark.parametrize("cond_lhs", [1, 9])   # guard true / false
    @pytest.mark.parametrize("i,j", [(3, 3), (3, 4)])
    def test_guarded_store_semantics(self, cond_lhs, i, j):
        program = self.build(cond_lhs, i, j)

        def transform(p):
            tree = p.functions["main"].trees["t0"]
            apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_RAW))

        check_semantics_preserved(program, transform)

    def test_commit_condition_conjoined(self):
        """The alias guard must be (compare AND store guard): if the
        store does not commit, the load saw memory, not the forward."""
        program = self.build(9, 3, 3)  # guard false, same address
        tree = program.functions["main"].trees["t0"]
        apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_RAW))
        and_ops = [op for op in tree.ops if op.opcode is Opcode.AND]
        assert and_ops, "expected materialised guard conjunction"


class TestWAW:
    def build_waw(self, i, j):
        program = Program()
        program.globals_.append(ArrayDecl("a", "float", (8,)))
        f = Function("main")
        b = TreeBuilder("t0")
        v1 = b.value(Opcode.FADD, [1.0, 0.5])
        addr1 = b.value(Opcode.ADD, [i, 0])
        b.store(v1, addr1)
        v2 = b.value(Opcode.FADD, [2.0, 0.25])
        addr2 = b.value(Opcode.ADD, [j, 0])
        b.store(v2, addr2)
        out = b.load(Constant(i), "float")
        b.emit(Opcode.PRINT, [out])
        out2 = b.load(Constant(j), "float")
        b.emit(Opcode.PRINT, [out2])
        b.halt()
        f.add_tree(b.tree)
        program.add_function(f)
        program.layout_memory()
        return program

    @pytest.mark.parametrize("i,j", [(3, 3), (3, 5)])
    def test_semantics_preserved(self, i, j):
        program = self.build_waw(i, j)

        def transform(p):
            tree = p.functions["main"].trees["t0"]
            apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_WAW))

        check_semantics_preserved(program, transform)

    def test_cost_is_one_compare(self):
        """Paper Section 4.5: 'only one address comparison operation is
        required' (plus nothing else for unguarded stores)."""
        program = self.build_waw(3, 5)
        tree = program.functions["main"].trees["t0"]
        app = apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_WAW))
        assert app.kind is ArcKind.MEM_WAW
        # compare + the address chain hoist adds no ops; the first
        # store's re-guard costs nothing for unguarded stores
        assert app.ops_added == 1
        assert app.replicated == 0

    def test_first_store_suppressed_on_alias(self):
        program = self.build_waw(3, 3)
        tree = program.functions["main"].trees["t0"]
        apply_spd(tree, ambiguous_arc(tree, ArcKind.MEM_WAW))
        stores = [op for op in tree.ops if op.is_store]
        assert stores[0].guard is not None and stores[0].guard.negate
        assert stores[1].guard is None


class TestWAR:
    def build_war(self, i, j):
        """load a[i]; dependent compute; store a[j]."""
        program = Program()
        program.globals_.append(ArrayDecl("a", "float", (8,)))
        f = Function("main")
        b = TreeBuilder("t0")
        # pre-set memory so the load sees something
        init = b.value(Opcode.FADD, [4.0, 0.5])
        b.store(init, Constant(i))
        loaded = b.load(Constant(i), "float")
        out = b.value(Opcode.FMUL, [loaded, 3.0])
        store_val = b.value(Opcode.FADD, [7.0, 0.0])
        b.store(store_val, Constant(j))
        b.emit(Opcode.PRINT, [out])
        after = b.load(Constant(j), "float")
        b.emit(Opcode.PRINT, [after])
        b.halt()
        f.add_tree(b.tree)
        program.add_function(f)
        program.layout_memory()
        return program

    def war_arc(self, tree):
        graph = build_dependence_graph(tree)
        arcs = [a for a in graph.ambiguous_arcs()
                if a.kind is ArcKind.MEM_WAR
                and tree.ops[a.src].is_load]
        assert arcs
        return arcs[0]

    @pytest.mark.parametrize("i,j", [(3, 3), (3, 5)])
    def test_semantics_preserved(self, i, j):
        program = self.build_war(i, j)

        def transform(p):
            tree = p.functions["main"].trees["t0"]
            apply_spd(tree, self.war_arc(tree))

        check_semantics_preserved(program, transform)

    def test_cost_model(self):
        """Paper Section 4.4: WAR cost is 2 + n_L (compare + new load +
        the replicated cone)."""
        program = self.build_war(3, 5)
        tree = program.functions["main"].trees["t0"]
        app = apply_spd(tree, self.war_arc(tree))
        assert app.kind is ArcKind.MEM_WAR
        assert app.ops_added == 2 + (app.replicated - 1)

    def test_new_load_reads_store_address(self):
        program = self.build_war(3, 5)
        tree = program.functions["main"].trees["t0"]
        arc = self.war_arc(tree)
        store = tree.ops[arc.dst]
        loads_before = [op for op in tree.ops if op.is_load]
        apply_spd(tree, arc)
        loads_after = [op for op in tree.ops if op.is_load]
        new_loads = [op for op in loads_after if op not in loads_before]
        assert any(op.address == store.address for op in new_loads)


class TestNonApplicability:
    def test_non_ambiguous_arc_rejected(self, raw_tree_program):
        tree = raw_tree_program.functions["main"].trees["t0"]
        graph = build_dependence_graph(tree)
        reg_arc = next(a for a in graph.arcs if a.kind is ArcKind.REG_RAW)
        with pytest.raises(SpDNotApplicable):
            apply_spd(tree, reg_arc)
