"""Unit tests for the Figure 5-1 guidance heuristic."""

import pytest

from repro.disambig import SpDConfig, speculative_disambiguation
from repro.disambig.spd_heuristic import _candidate_gains
from repro.ir import ArcKind, build_dependence_graph, naive_oracle
from repro.machine import machine
from repro.sim import run_program

from ..conftest import build_raw_tree_program


def loop_tree_and_probs(program, profile):
    func, tree = next((f, t) for f, t in program.all_trees()
                      if "for" in t.name)
    probs = profile.path_probabilities((func, tree.name), len(tree.exits))
    return tree, probs


class TestCandidateGains:
    def test_critical_alias_has_positive_gain(self, example22_program):
        profile = run_program(example22_program).profile
        tree, probs = loop_tree_and_probs(example22_program, profile)
        from repro.disambig import make_static_oracle
        graph = build_dependence_graph(tree, make_static_oracle(tree))
        gains = _candidate_gains(graph, machine(None, 6), probs)
        assert gains
        assert all(g > 0 for g, _arc in gains)

    def test_off_critical_path_arcs_excluded(self, raw_tree_program):
        """An ambiguous arc whose removal cannot shorten any path has
        zero gain and is not a candidate."""
        tree = raw_tree_program.functions["main"].trees["t0"].copy()
        # make the load chain non-critical by adding a long serial chain
        graph = build_dependence_graph(tree)
        gains = _candidate_gains(graph, machine(None, 2), [1.0])
        # with 2-cycle memory the store->load chain still dominates, so
        # there IS gain; with div chains it may not be. Just check the
        # returned arcs are all ambiguous.
        assert all(arc.ambiguous for _g, arc in gains)


class TestHeuristicLoop:
    def run_heuristic(self, config=SpDConfig(), memory_latency=6):
        program = build_raw_tree_program(3, 5)
        tree = program.functions["main"].trees["t0"]
        result = speculative_disambiguation(
            tree, naive_oracle, machine(None, memory_latency),
            config=config)
        return program, tree, result

    def test_applies_profitable_raw(self):
        _program, _tree, result = self.run_heuristic()
        assert result.applications
        assert result.count_by_kind()[ArcKind.MEM_RAW] >= 1
        assert result.predicted_gain > 0

    def test_max_expansion_bounds_growth(self):
        program = build_raw_tree_program(3, 5)
        tree = program.functions["main"].trees["t0"]
        base = tree.size()
        config = SpDConfig(max_expansion=1.05, min_gain=0.1)
        speculative_disambiguation(tree, naive_oracle, machine(None, 6),
                                   config=config)
        assert tree.size() <= int(base * 4)  # sanity: never runaway

    def test_min_gain_gate(self):
        """An absurdly high MinGain prevents any application."""
        _program, tree, result = self.run_heuristic(
            SpDConfig(min_gain=10_000.0))
        assert not result.applications
        assert result.ops_added == 0

    def test_semantics_preserved_after_heuristic(self):
        program = build_raw_tree_program(3, 3)
        before = run_program(program.copy())
        tree = program.functions["main"].trees["t0"]
        speculative_disambiguation(tree, naive_oracle, machine(None, 6))
        after = run_program(program)
        assert before.output_equal(after)

    def test_rollback_on_regression(self):
        """With memory latency 2 and a trivial cone, the overhead can
        exceed the benefit; whatever the heuristic decides, the tree
        must never get slower on the infinite machine."""
        from repro.sim import infinite_machine_timing
        for mem in (2, 6):
            program = build_raw_tree_program(3, 5)
            tree = program.functions["main"].trees["t0"]
            mach = machine(None, mem)
            before = infinite_machine_timing(
                build_dependence_graph(tree, naive_oracle), mach).path_times
            speculative_disambiguation(tree, naive_oracle, mach)
            after = infinite_machine_timing(
                build_dependence_graph(tree, naive_oracle), mach).path_times
            assert after[0] <= before[0]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SpDConfig(max_expansion=0.5)
        with pytest.raises(ValueError):
            SpDConfig(min_gain=-1)
        with pytest.raises(ValueError):
            SpDConfig(assumed_alias_probability=1.5)
