"""Unit tests for the GCD test and Banerjee inequalities."""


from repro.disambig import banerjee_test, gcd_test, subscripts_may_alias
from repro.ir import AffineExpr


def affine(const, **coeffs):
    return AffineExpr(const, coeffs)


class TestGCD:
    def test_constant_zero_solvable(self):
        assert gcd_test(affine(0))

    def test_constant_nonzero_unsolvable(self):
        assert not gcd_test(affine(3))

    def test_divisible_constant(self):
        # 2i + 4j = -6 has solutions (gcd 2 divides 6)
        assert gcd_test(affine(6, i=2, j=4))

    def test_indivisible_constant(self):
        # 2i + 4j = -3: gcd 2 does not divide 3
        assert not gcd_test(affine(3, i=2, j=4))

    def test_unit_coefficient_always_solvable(self):
        assert gcd_test(affine(7, i=1, j=100))


class TestBanerjee:
    def test_solution_inside_bounds(self):
        # i - 4 = 0 with i in [1, 100]
        assert banerjee_test(affine(-4, i=1), {"i": (1, 100)})

    def test_solution_outside_bounds(self):
        # i - 200 = 0 with i in [1, 100]
        assert not banerjee_test(affine(-200, i=1), {"i": (1, 100)})

    def test_negative_coefficient(self):
        # -i + 5 = 0, i in [1, 4]: needs i = 5, excluded
        assert not banerjee_test(affine(5, i=-1), {"i": (1, 4)})
        assert banerjee_test(affine(5, i=-1), {"i": (1, 5)})

    def test_two_symbols(self):
        # i - j = 0 with disjoint ranges can never meet
        bounds = {"i": (0, 4), "j": (10, 20)}
        assert not banerjee_test(affine(0, i=1, j=-1), bounds)
        bounds = {"i": (0, 10), "j": (10, 20)}
        assert banerjee_test(affine(0, i=1, j=-1), bounds)

    def test_unbounded_symbol_is_conservative(self):
        assert banerjee_test(affine(-1000, i=1), {})
        assert banerjee_test(affine(-1000, i=1), {"i": (None, None)})

    def test_half_bounded(self):
        # i >= 0 and i + 5 = 0 impossible
        assert not banerjee_test(affine(5, i=1), {"i": (0, None)})
        assert banerjee_test(affine(-5, i=1), {"i": (0, None)})


class TestCombined:
    def test_identical_subscripts_always_alias(self):
        sub = affine(4, i=1)
        assert subscripts_may_alias(sub, sub, {}) is True

    def test_constant_distinct_never_alias(self):
        assert subscripts_may_alias(affine(3), affine(4), {}) is False

    def test_example_2_2(self):
        """Paper Example 2-2: a[2i] vs a[i+4] with i in [1,100] may
        alias (only at i = 4) — the static answer must be 'maybe'."""
        verdict = subscripts_may_alias(
            affine(0, i=2), affine(4, i=1), {"i": (1, 100)})
        assert verdict is None

    def test_example_2_2_with_tight_bounds(self):
        """Same subscripts but i in [5, 100]: i = 4 excluded, provably
        independent (Banerjee)."""
        verdict = subscripts_may_alias(
            affine(0, i=2), affine(4, i=1), {"i": (5, 100)})
        assert verdict is False

    def test_even_odd_gcd_disproof(self):
        # a[2i] vs a[2i + 1]: difference 1, gcd 2 — never alias
        verdict = subscripts_may_alias(
            affine(0, i=2), affine(1, i=2), {})
        assert verdict is False

    def test_adjacent_elements_never_alias(self):
        # bubble sort: a[i] vs a[i+1]
        verdict = subscripts_may_alias(
            affine(0, i=1), affine(1, i=1), {})
        assert verdict is False

    def test_exhaustive_agreement_on_small_domains(self):
        """The combined test must never answer False when an integer
        solution exists in-bounds (soundness check by enumeration)."""
        cases = [
            (affine(0, i=2), affine(4, i=1), {"i": (1, 10)}),
            (affine(1, i=3), affine(0, i=2), {"i": (0, 8)}),
            (affine(0, i=1, j=1), affine(3, i=1), {"i": (0, 5), "j": (0, 5)}),
            (affine(2, i=4), affine(0, j=6), {"i": (0, 6), "j": (0, 6)}),
        ]
        for sub_a, sub_b, bounds in cases:
            verdict = subscripts_may_alias(sub_a, sub_b, bounds)
            syms = sorted(set(sub_a.coeffs) | set(sub_b.coeffs))
            ranges = [range(bounds[s][0], bounds[s][1] + 1) for s in syms]
            import itertools
            any_hit = any(
                sub_a.evaluate(dict(zip(syms, point)))
                == sub_b.evaluate(dict(zip(syms, point)))
                for point in itertools.product(*ranges))
            if verdict is False:
                assert not any_hit
            if verdict is True:
                assert any_hit
