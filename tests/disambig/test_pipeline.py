"""Unit tests for the four disambiguator pipelines (Table 6-4)."""

import pytest

from repro.disambig import Disambiguator, disambiguate
from repro.machine import machine
from repro.sim import evaluate_program, run_program


@pytest.fixture(scope="module")
def views(example22_program):
    profile = run_program(example22_program).profile
    mach = machine(5, 6)
    return profile, mach, {
        kind: disambiguate(example22_program, kind, profile=profile,
                           machine=mach)
        for kind in Disambiguator
    }


class TestViews:
    def test_only_spec_transforms(self, views, example22_program):
        _profile, _mach, by_kind = views
        base = example22_program.size()
        for kind, view in by_kind.items():
            if kind is Disambiguator.SPEC:
                assert view.code_size() > base
            else:
                assert view.code_size() == base

    def test_input_program_never_mutated(self, views, example22_program):
        base_tree_sizes = {t.name: len(t.ops)
                           for _f, t in example22_program.all_trees()}
        for view in views[2].values():
            pass  # views were built; now re-check the original
        for _f, tree in example22_program.all_trees():
            assert len(tree.ops) == base_tree_sizes[tree.name]
            assert not tree.spd_resolved

    def test_graphs_cover_every_tree(self, views):
        _profile, _mach, by_kind = views
        for view in by_kind.values():
            keys = {(f, t.name) for f, t in view.program.all_trees()}
            assert set(view.graphs) == keys

    def test_arc_count_ordering(self, views):
        """NAIVE keeps the most ambiguous arcs; STATIC removes some;
        PERFECT removes at least as many as STATIC (on this program)."""
        _profile, _mach, by_kind = views
        naive = by_kind[Disambiguator.NAIVE].ambiguous_arc_count()
        static = by_kind[Disambiguator.STATIC].ambiguous_arc_count()
        perfect = by_kind[Disambiguator.PERFECT].ambiguous_arc_count()
        assert naive >= static >= perfect

    def test_spec_records_applications(self, views):
        _profile, _mach, by_kind = views
        spec = by_kind[Disambiguator.SPEC]
        assert sum(spec.spd_counts().values()) >= 1

    def test_perfect_requires_profile(self, example22_program):
        with pytest.raises(ValueError, match="profile"):
            disambiguate(example22_program, Disambiguator.PERFECT)


class TestTimingOrdering:
    def test_cycle_ordering(self, views):
        """NAIVE >= STATIC >= PERFECT (arc-removal monotonicity) and
        SPEC <= STATIC (the rollback check guarantees no regression)."""
        profile, mach, by_kind = views
        cycles = {}
        for kind, view in by_kind.items():
            cycles[kind] = evaluate_program(view.program, view.graphs,
                                            mach, profile).cycles
        assert cycles[Disambiguator.NAIVE] >= cycles[Disambiguator.STATIC]
        assert cycles[Disambiguator.STATIC] >= cycles[Disambiguator.PERFECT]
        assert cycles[Disambiguator.SPEC] <= cycles[Disambiguator.STATIC]

    def test_spec_beats_perfect_on_example22(self, views):
        """Example 2-2 is the quick phenomenon in miniature: the pair
        aliases once, so PERFECT must keep the arc, while SpD resolves
        it dynamically."""
        profile, mach, by_kind = views
        spec = evaluate_program(by_kind[Disambiguator.SPEC].program,
                                by_kind[Disambiguator.SPEC].graphs,
                                mach, profile)
        perfect = evaluate_program(by_kind[Disambiguator.PERFECT].program,
                                   by_kind[Disambiguator.PERFECT].graphs,
                                   mach, profile)
        assert spec.cycles < perfect.cycles


class TestSemanticPreservation:
    def test_spec_output_identical(self, views, example22_program,
                                   example22_result):
        _profile, _mach, by_kind = views
        transformed = by_kind[Disambiguator.SPEC].program.copy()
        assert example22_result.output_equal(run_program(transformed))

    def test_spec_on_pointer_kernel(self, pointer_program):
        before = run_program(pointer_program)
        view = disambiguate(pointer_program, Disambiguator.SPEC,
                            profile=before.profile, machine=machine(None, 6))
        after = run_program(view.program.copy())
        assert before.output_equal(after)
