"""Tests for the Section 7 combined multi-pair transformation."""

import pytest

from repro.disambig import SpDNotApplicable, apply_spd, apply_spd_combined
from repro.ir import (ArcKind, ArrayDecl, Function, Opcode, Program,
                      TreeBuilder, build_dependence_graph, validate_program)
from repro.machine import machine
from repro.sim import infinite_machine_timing, run_program


def two_pair_program(i1, j1, i2, j2):
    """store a[i1]; load a[j1] -> chain; store a[i2]; load a[j2] -> chain."""
    program = Program()
    program.globals_.append(ArrayDecl("a", "float", (16,)))
    function = Function("main")
    b = TreeBuilder("t0")
    v1 = b.value(Opcode.FADD, [1.5, 0.0])
    a1 = b.value(Opcode.ADD, [i1, 0])
    b.store(v1, a1)
    l1 = b.load(b.value(Opcode.ADD, [j1, 0]), "float")
    r1 = b.value(Opcode.FMUL, [l1, 2.0])
    v2 = b.value(Opcode.FADD, [2.5, 0.0])
    a2 = b.value(Opcode.ADD, [i2, 0])
    b.store(v2, a2)
    l2 = b.load(b.value(Opcode.ADD, [j2, 0]), "float")
    r2 = b.value(Opcode.FMUL, [l2, 4.0])
    b.emit(Opcode.PRINT, [b.value(Opcode.FADD, [r1, r2])])
    b.halt()
    function.add_tree(b.tree)
    program.add_function(function)
    program.layout_memory()
    return program


def raw_arcs(tree):
    graph = build_dependence_graph(tree)
    return [a for a in graph.ambiguous_arcs() if a.kind is ArcKind.MEM_RAW]


class TestCombined:
    @pytest.mark.parametrize("i1,j1,i2,j2", [
        (1, 1, 2, 2),   # both alias
        (1, 3, 2, 4),   # neither aliases (the fast path)
        (1, 1, 2, 4),   # first aliases only
        (1, 3, 2, 2),   # second aliases only
        (1, 2, 2, 1),   # cross-aliasing (store2 hits load1's slot)
    ])
    def test_semantics_all_outcomes(self, i1, j1, i2, j2):
        program = two_pair_program(i1, j1, i2, j2)
        reference = run_program(program.copy(), strict_memory=True)
        tree = program.functions["main"].trees["t0"]
        arcs = raw_arcs(tree)
        assert len(arcs) >= 2
        apply_spd_combined(tree, arcs)
        validate_program(program)
        result = run_program(program, strict_memory=True)
        assert reference.output_equal(result), (reference.output,
                                                result.output)

    def test_cost_linear_in_pairs(self):
        """n compares + (n-1) ORs + one cone copy — not 2^n versions."""
        program = two_pair_program(1, 3, 2, 4)
        tree = program.functions["main"].trees["t0"]
        base = len(tree.ops)
        arcs = raw_arcs(tree)
        app = apply_spd_combined(tree, arcs)
        compares = sum(1 for op in tree.ops if op.opcode is Opcode.CMP_EQ)
        assert compares == len(arcs)
        ors = sum(1 for op in tree.ops if op.opcode is Opcode.OR)
        assert ors == len(arcs) - 1
        assert app.ops_added == len(tree.ops) - base

    def test_fast_loads_unconstrained_but_slow_version_bounds_tree(self):
        """The fast copies hoist above the stores — but under pure
        guarded execution the *slow* version still occupies the static
        schedule, so the tree's exit time does not improve (it may pick
        up a cycle of compare/guard overhead).  This is the measured
        limitation of the Section 7 two-version idea: it trades the
        2^n code blow-up for giving up the latency win unless the
        machine takes an explicit branch on the compare (which would be
        Nicolau's RTD, the technique the paper contrasts in Section
        2.3).  See EXPERIMENTS.md, Ablation D."""
        program = two_pair_program(1, 3, 2, 4)
        tree = program.functions["main"].trees["t0"]
        arcs = raw_arcs(tree)
        original_load_ids = [tree.ops[a.dst].op_id for a in arcs]
        mach = machine(None, 6)
        before = infinite_machine_timing(
            build_dependence_graph(tree), mach).path_times[0]
        apply_spd_combined(tree, arcs)
        graph = build_dependence_graph(tree)
        timing = infinite_machine_timing(graph, mach)
        # the fast copies issue strictly earlier than their originals
        for load_id in set(original_load_ids):
            orig_pos = tree.op_index(load_id)
            copies = [i for i, op in enumerate(tree.ops)
                      if op.is_load and op.op_id != load_id
                      and op.srcs == tree.ops[orig_pos].srcs]
            assert copies
            assert min(timing.issue[c] for c in copies) \
                < timing.issue[orig_pos]
        # ... but the exit still waits for the slow version
        assert timing.path_times[0] <= before + 4

    def test_rejects_non_raw(self):
        program = two_pair_program(1, 3, 2, 4)
        tree = program.functions["main"].trees["t0"]
        graph = build_dependence_graph(tree)
        waw = [a for a in graph.ambiguous_arcs()
               if a.kind is ArcKind.MEM_WAW]
        assert waw
        with pytest.raises(SpDNotApplicable):
            apply_spd_combined(tree, waw[:1])

    def test_rejects_empty(self):
        program = two_pair_program(1, 3, 2, 4)
        tree = program.functions["main"].trees["t0"]
        with pytest.raises(SpDNotApplicable):
            apply_spd_combined(tree, [])

    def test_combined_cheaper_than_iterated(self):
        """The point of Section 7's scheme: for the same pairs, the
        two-version code is smaller than one-at-a-time's product."""
        combined = two_pair_program(1, 3, 2, 4)
        tree_c = combined.functions["main"].trees["t0"]
        apply_spd_combined(tree_c, raw_arcs(tree_c))

        iterated = two_pair_program(1, 3, 2, 4)
        tree_i = iterated.functions["main"].trees["t0"]
        for _ in range(2):
            arcs = raw_arcs(tree_i)
            if not arcs:
                break
            apply_spd(tree_i, arcs[0])
        assert len(tree_c.ops) <= len(tree_i.ops)

    def test_guarded_store_commit_condition(self):
        """A guarded involved store only forces the slow version when it
        actually commits."""
        from repro.ir import Guard
        program = Program()
        program.globals_.append(ArrayDecl("a", "float", (16,)))
        function = Function("main")
        b = TreeBuilder("t0")
        cond = b.value(Opcode.CMP_LT, [9, 5])   # false: store cancelled
        v = b.value(Opcode.FADD, [7.5, 0.0])
        addr = b.value(Opcode.ADD, [3, 0])
        b.store(v, addr, guard=Guard(cond))
        loaded = b.load(b.value(Opcode.ADD, [3, 0]), "float")  # same slot!
        b.emit(Opcode.PRINT, [b.value(Opcode.FMUL, [loaded, 2.0])])
        b.halt()
        function.add_tree(b.tree)
        program.add_function(function)
        program.layout_memory()

        reference = run_program(program.copy(), strict_memory=True)
        tree = program.functions["main"].trees["t0"]
        apply_spd_combined(tree, raw_arcs(tree))
        validate_program(program)
        result = run_program(program, strict_memory=True)
        assert reference.output_equal(result)
        assert result.output == [0.0]  # the cancelled store never lands
