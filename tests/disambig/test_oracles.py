"""Unit tests for the alias oracles behind each disambiguator."""


from repro.disambig import (make_perfect_oracle, make_static_oracle,
                            naive_oracle, static_answer)
from repro.frontend import compile_source
from repro.ir import (AffineExpr, AliasAnswer, MemAccess, Opcode, Operation,
                      Region, RegionKind, build_dependence_graph)
from repro.sim import run_program
from repro.sim.profile import ProfileData


def access(kind, name, const=0, bounds=None, **coeffs):
    return MemAccess(Region(kind, name), AffineExpr(const, coeffs),
                     bounds or {})


class TestStaticAnswer:
    def test_missing_information_is_maybe(self):
        assert static_answer(None, None) is AliasAnswer.MAYBE
        assert static_answer(MemAccess(), MemAccess()) is AliasAnswer.MAYBE

    def test_disjoint_globals(self):
        a = access(RegionKind.GLOBAL, "a", i=1)
        b = access(RegionKind.GLOBAL, "b", i=1)
        assert static_answer(a, b) is AliasAnswer.NO

    def test_same_global_same_subscript(self):
        a = access(RegionKind.GLOBAL, "a", 4, i=1)
        assert static_answer(a, a) is AliasAnswer.YES

    def test_same_global_gcd_disproof(self):
        even = access(RegionKind.GLOBAL, "a", 0, i=2)
        odd = access(RegionKind.GLOBAL, "a", 1, i=2)
        assert static_answer(even, odd) is AliasAnswer.NO

    def test_params_are_maybe(self):
        p = access(RegionKind.PARAM, "f.a", i=1)
        q = access(RegionKind.PARAM, "f.b", i=1)
        assert static_answer(p, q) is AliasAnswer.MAYBE

    def test_same_param_subscript_test_applies(self):
        """Two references through the *same* parameter share a base, so
        the affine test still works — a[i] vs a[i+1] never alias."""
        p0 = access(RegionKind.PARAM, "f.a", 0, i=1)
        p1 = access(RegionKind.PARAM, "f.a", 1, i=1)
        assert static_answer(p0, p1) is AliasAnswer.NO

    def test_non_affine_subscript_maybe(self):
        known = access(RegionKind.GLOBAL, "a", i=1)
        unknown = MemAccess(Region(RegionKind.GLOBAL, "a"), None)
        assert static_answer(known, unknown) is AliasAnswer.MAYBE


class TestStaticOracleInterference:
    def test_induction_update_between_refs_degrades_answer(self):
        """a[i] vs a[i+1] with `i = i + 1` *between* them: the symbol
        values differ at the two references, so the subscript proof is
        invalid and the oracle must answer MAYBE."""
        source = """
            int a[100];
            int main() {
                int i = 3;
                a[i] = 1;
                i = i + 1;
                print(a[i + 1]);
                return 0;
            }
        """
        program = compile_source(source)
        tree = next(t for _f, t in program.all_trees()
                    if any(op.is_store for op in t.ops))
        oracle = make_static_oracle(tree)
        store = next(op for op in tree.ops if op.is_store)
        load = next(op for op in tree.ops if op.is_load)
        assert oracle(store, load) is AliasAnswer.MAYBE

    def test_no_interference_keeps_answer(self):
        source = """
            int a[100];
            int main() {
                int i = 3;
                a[i] = 1;
                print(a[i + 1]);
                return 0;
            }
        """
        program = compile_source(source)
        tree = next(t for _f, t in program.all_trees()
                    if any(op.is_store for op in t.ops))
        oracle = make_static_oracle(tree)
        store = next(op for op in tree.ops if op.is_store)
        load = next(op for op in tree.ops if op.is_load)
        assert oracle(store, load) is AliasAnswer.NO

    def test_region_disjointness_immune_to_interference(self):
        source = """
            int a[100]; int b[100];
            int main() {
                int i = 3;
                a[i] = 1;
                i = i + 1;
                print(b[i]);
                return 0;
            }
        """
        program = compile_source(source)
        tree = next(t for _f, t in program.all_trees()
                    if any(op.is_store for op in t.ops))
        oracle = make_static_oracle(tree)
        store = next(op for op in tree.ops if op.is_store)
        load = next(op for op in tree.ops if op.is_load)
        assert oracle(store, load) is AliasAnswer.NO


class TestPerfectOracle:
    def test_superfluous_arcs_removed(self, example22_program):
        """Example 2-2's pair aliases once, so PERFECT keeps it; pairs
        that never aliased are answered NO."""
        profile = run_program(example22_program).profile
        func, tree = next(
            (f, t) for f, t in example22_program.all_trees()
            if "for" in t.name)
        oracle = make_perfect_oracle(func, tree, profile)
        graph = build_dependence_graph(tree, oracle)
        # the a[2i]/a[i+4] arc must survive (it aliased at i=4)
        survivors = graph.memory_arcs()
        assert survivors
        regions = {(tree.ops[a.src].access.region.name,
                    tree.ops[a.dst].access.region.name)
                   for a in survivors if tree.ops[a.src].access}
        assert ("a", "a") in regions

    def test_never_coexecuted_pair_is_no(self):
        profile = ProfileData()  # empty: nothing ever aliased
        op_a = Operation(0, Opcode.STORE, srcs=(None, None))
        op_b = Operation(1, Opcode.LOAD, dest=None, srcs=(None,))
        from repro.ir import DecisionTree
        oracle = make_perfect_oracle("f", DecisionTree("t"), profile)
        assert oracle(op_a, op_b) is AliasAnswer.NO


class TestNaiveOracle:
    def test_always_maybe(self):
        assert naive_oracle(None, None) is AliasAnswer.MAYBE
